"""End-to-end integration tests across the full stack."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import DEFAULT_STRATEGIES, run_comparison, run_single

MESH = ExperimentConfig(duration=20.0, drain=5.0)
DEG5 = ExperimentConfig(
    topology_kind="regular", degree=5, duration=20.0, drain=5.0
)


class TestLosslessBaseline:
    """With no hazards at all, everything must be perfect."""

    def test_all_strategies_reach_100_percent(self):
        config = MESH.with_updates(loss_rate=0.0)
        for name in DEFAULT_STRATEGIES:
            summary = run_single(config, name, seed=0)
            assert summary.delivery_ratio == pytest.approx(1.0), name
            assert summary.qos_delivery_ratio == pytest.approx(1.0), name

    def test_rtree_sends_exactly_one_packet_per_subscriber_in_mesh(self):
        # Every publisher-subscriber pair has a direct link in a full mesh.
        config = MESH.with_updates(loss_rate=0.0)
        summary = run_single(config, "R-Tree", seed=0)
        assert summary.packets_per_subscriber == pytest.approx(1.0)

    def test_dcrd_delay_is_shortest_path_delay(self):
        config = MESH.with_updates(loss_rate=0.0, deadline_factor=3.0)
        summary = run_single(config, "DCRD", seed=0)
        # Deadline = 3x shortest delay; DCRD without failures follows the
        # minimum-expected-delay route, so nothing can be late.
        assert summary.qos_delivery_ratio == pytest.approx(1.0)
        assert summary.duplicates == 0


class TestUnderFailures:
    def test_dcrd_delivers_everything_in_well_connected_mesh(self):
        config = MESH.with_updates(failure_probability=0.06)
        summary = run_single(config, "DCRD", seed=1)
        assert summary.delivery_ratio == pytest.approx(1.0, abs=0.005)

    def test_ordering_of_strategies_matches_paper(self):
        config = DEG5.with_updates(failure_probability=0.06)
        results = run_comparison(config, seed=2)
        assert (
            results["ORACLE"].qos_delivery_ratio
            >= results["DCRD"].qos_delivery_ratio
            > results["D-Tree"].qos_delivery_ratio
        )
        assert (
            results["DCRD"].delivery_ratio > results["R-Tree"].delivery_ratio
        )

    def test_multipath_sends_far_more_traffic_than_dcrd(self):
        config = DEG5.with_updates(failure_probability=0.06)
        results = run_comparison(config, seed=2, strategies=("DCRD", "Multipath"))
        assert (
            results["Multipath"].packets_per_subscriber
            > 1.5 * results["DCRD"].packets_per_subscriber
        )

    def test_trees_qos_equals_delivery_ratio(self):
        # Paper §IV-D1: tree baselines lose packets to failures, not to
        # lateness, so their two ratios coincide.
        config = MESH.with_updates(failure_probability=0.08)
        for name in ("R-Tree", "D-Tree"):
            summary = run_single(config, name, seed=3)
            assert summary.qos_delivery_ratio == pytest.approx(
                summary.delivery_ratio, abs=0.01
            ), name

    def test_failures_increase_dcrd_traffic(self):
        calm = run_single(MESH, "DCRD", seed=4)
        stormy = run_single(
            MESH.with_updates(failure_probability=0.10), "DCRD", seed=4
        )
        assert stormy.packets_per_subscriber > calm.packets_per_subscriber


class TestDrainSemantics:
    def test_messages_published_only_during_window(self):
        config = MESH.with_updates(duration=10.0, drain=5.0, num_topics=2)
        summary = run_single(config, "DCRD", seed=5)
        # Each publisher emits at most ceil(duration / interval) + 1 packets.
        assert summary.messages_published <= 2 * 12


class TestReproducibility:
    def test_full_stack_determinism(self):
        config = DEG5.with_updates(failure_probability=0.04)
        first = run_comparison(config, seed=6)
        second = run_comparison(config, seed=6)
        for name in DEFAULT_STRATEGIES:
            assert first[name].as_dict() == second[name].as_dict(), name

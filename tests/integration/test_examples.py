"""Smoke tests: every example script runs end-to-end at reduced scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_runs_and_reports_all_strategies():
    out = run_example("quickstart.py", "--duration", "8", "--seed", "1")
    for name in ("DCRD", "R-Tree", "D-Tree", "ORACLE", "Multipath"):
        assert name in out
    assert "delivered" in out


def test_air_surveillance_two_phases():
    out = run_example("air_surveillance.py", "--duration", "8", "--seed", "2")
    assert "clear weather" in out
    assert "weather front" in out
    assert "DCRD" in out and "D-Tree" in out


def test_market_data_fanout_reports_cost():
    out = run_example(
        "market_data_fanout.py", "--duration", "6", "--seed", "3"
    )
    assert "Multipath" in out
    assert "traffic" in out


def test_failure_storm_includes_persistence_counters():
    out = run_example("failure_storm.py", "--duration", "6", "--seed", "4")
    assert "DCRD+persist" in out
    assert "persisted=" in out


def test_congestion_meltdown_shows_all_regimes():
    out = run_example("congestion_meltdown.py", "--duration", "4")
    assert "DCRD+adaptive" in out
    assert "Takeaway" in out


def test_live_delivery_rate_attaches_custom_observer():
    out = run_example(
        "live_delivery_rate.py",
        "--duration", "6", "--seed", "7", "--window", "2",
    )
    assert "busiest broker=" in out  # periodic live report lines
    assert "Observer saw" in out
    assert "live.deliveries=" in out  # merged into summary.perf


def test_embedded_api_logs_deliveries():
    out = run_example("embedded_api.py")
    assert "ops-east" in out and "archiver" in out
    assert "deliveries" in out

"""Bit-identical equivalence pins for the data-plane fast path.

The fast path (tuple-keyed kernel heap with tombstone compaction,
``schedule_fire`` deliveries, frame fast copies, hot-loop caches in the
overlay/broker/ARQ/forwarding layers) is a pure performance change: every
run must produce *exactly* the trace the pre-change code produced — same
event interleaving, same RNG draw order, same per-message outcomes.

``data/fast_path_reference.json`` holds per-run fingerprints recorded at
the commit immediately before the fast path landed: summary counters,
``processed_events`` (a proxy for the exact event schedule), and an MD5
digest over every ``(msg_id, subscriber, delivery_time, gave_up)`` outcome
row. These cells cover both strategy families (DCRD reroute/give-up logic
and tree forwarding) and both link disciplines (FIFO and EDF with expired
drops), across two seeds each.

A second test pins fast-vs-legacy kernel equivalence *within* the current
code: compaction merely reaps entries that could never fire, so disabling
it (``compaction_ratio = None``) must not change a single outcome.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.sim.engine import Simulator

REFERENCE = json.loads(
    (Path(__file__).parent / "data" / "fast_path_reference.json").read_text()
)

CONFIGS = {
    "baseline": dict(
        topology_kind="regular",
        degree=5,
        num_nodes=20,
        num_topics=6,
        failure_probability=0.06,
        duration=15.0,
        drain=5.0,
    ),
    "edf_storm": dict(
        topology_kind="regular",
        degree=5,
        num_nodes=20,
        num_topics=6,
        failure_probability=0.03,
        duration=2.0,
        drain=2.0,
        link_service_time=0.02,
        queue_discipline="edf",
        edf_drop_expired=True,
        deadline_factor_choices=(4.0, 16.0),
    ),
    "edf_load": dict(
        topology_kind="regular",
        degree=5,
        num_nodes=20,
        num_topics=6,
        failure_probability=0.03,
        duration=15.0,
        drain=5.0,
        publish_interval=0.0625,
        link_service_time=0.05,
        queue_discipline="edf",
        edf_drop_expired=True,
        deadline_factor_choices=(4.0, 16.0),
    ),
}

CELLS = [
    ("baseline", "DCRD"),
    ("baseline", "D-Tree"),
    ("edf_storm", "DCRD"),
    ("edf_load", "P-DTree"),
]


def _run(config_name: str, strategy: str, seed: int, **overrides):
    """Execute one cell; returns the environment (post-run) and its summary."""
    config = ExperimentConfig(**CONFIGS[config_name]).with_updates(**overrides)
    env = build_environment(config, strategy, seed)
    return env, env.execute()


def _digest(env, summary) -> dict:
    """Compress one executed cell's full trace into comparable scalars."""
    outcomes = sorted(
        (o.msg_id, o.subscriber, repr(o.delivery_time), o.gave_up)
        for o in env.ctx.metrics.outcomes()
    )
    digest = hashlib.md5(
        "|".join(",".join(map(str, row)) for row in outcomes).encode()
    ).hexdigest()
    return dict(
        delivered=summary.delivered,
        on_time=summary.on_time,
        duplicates=summary.duplicates,
        data_transmissions=summary.data_transmissions,
        give_ups=sum(1 for o in env.ctx.metrics.outcomes() if o.gave_up),
        dropped_expired=sum(env.ctx.network.stats.dropped_expired.values()),
        processed_events=env.ctx.sim.processed_events,
        outcome_digest=digest,
    )


#: The four observation modes every cell must be bit-identical in. The
#: probe bus compiles its slots to None (plain), one bound handler, or a
#: fused sanitizer+tracer chain — none of which may perturb the run.
MODES = {
    "plain": dict(),
    "sanitized": dict(sanitize=True),
    "traced": dict(trace=True),
    "sanitized+traced": dict(sanitize=True, trace=True),
}


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("config_name,strategy", CELLS)
def test_matches_pre_fast_path_reference(config_name, strategy, seed, mode):
    """Every cell reproduces the recorded pre-change trace exactly, in all
    four observation modes: the probe bus is observation-only, so a
    sanitized and/or traced run pops the same event interleaving, draws
    the same RNG sequence and produces the same per-message outcomes —
    only sanity.*/trace.* perf counters differ, and the digest excludes
    perf."""
    env, summary = _run(config_name, strategy, seed, **MODES[mode])
    if "traced" in mode:
        assert env.tracer is not None
        assert env.tracer.events_recorded > 0
    if "sanitized" in mode:
        assert env.sanitizer is not None
        assert env.sanitizer.events_checked > 0
    got = _digest(env, summary)
    want = REFERENCE[f"{config_name}/{strategy}/seed{seed}"]
    assert got == want


def test_fast_and_legacy_kernels_trace_identically(monkeypatch):
    """Compaction forced on every cancel vs disabled: bit-identical runs.

    The default thresholds rarely trip on a 20-node world, so the "fast"
    side drops them to the floor — every cancelled ACK timer triggers a
    heap rebuild — while the "legacy" side (``compaction_ratio = None``)
    falls back to pure lazy deletion. Both must pop the same live events
    in the same order, and both must match the pre-change reference.
    (The baseline cell is the one whose ACKs actually land; the EDF storm
    loses every ACK, so it cancels no timers at all.)
    """
    monkeypatch.setattr(Simulator, "compaction_ratio", 0.01)
    monkeypatch.setattr(Simulator, "compaction_min", 1)
    env, summary = _run("baseline", "DCRD", 1)
    assert env.ctx.sim.heap_compactions > 0
    aggressive = _digest(env, summary)
    assert aggressive == REFERENCE["baseline/DCRD/seed1"]

    monkeypatch.setattr(Simulator, "compaction_ratio", None)
    monkeypatch.setattr(Simulator, "compaction_min", 64)
    env, summary = _run("baseline", "DCRD", 1)
    assert env.ctx.sim.heap_compactions == 0
    assert _digest(env, summary) == aggressive

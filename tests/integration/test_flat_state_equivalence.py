"""Equivalence suite for the flat index-addressed data-plane state.

The mega-scale data plane keeps per-link and per-subscription hot state in
flat, integer-indexed storage (packed direction ids -> interned per-link
rows; per-topic subscriber subgroups aggregated once per workload
version), with the historical object layer reduced to facade views over
the same rows. These tests pin the equivalences that restructuring must
preserve:

* the facade mappings (``stats.sent[kind]``...) and the flat counter rows
  are the *same* storage, in both directions, before and after real runs;
* packed direction ids are a pure function of the topology — identical
  across independent rebuilds of the same world;
* subscription-subgroup bitmaps match brute-force aggregation over the
  raw specs, and follow churn;
* a sanitized + traced run stays on the interned flat path (zero facade
  fallbacks) while the observation layers see every event;
* ARQ latent-timer elision is outcome-invariant: an eager-timer run and
  an eliding run produce bit-identical summaries and outcomes.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro.overlay.links import FrameKind
from repro.pubsub.topics import Subscription

CONFIGS = {
    "lossy_mesh": ExperimentConfig(
        topology_kind="full_mesh",
        num_nodes=12,
        loss_rate=0.05,
        failure_probability=0.06,
        duration=8.0,
    ),
    "regular": ExperimentConfig(
        topology_kind="regular",
        num_nodes=20,
        degree=5,
        loss_rate=1e-3,
        failure_probability=0.06,
        duration=8.0,
    ),
}


def _pack(src: int, dst: int) -> int:
    return (src << 21) | dst


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_facade_views_alias_flat_rows_after_run(name):
    """After a real lossy run, every facade mapping IS its flat row."""
    env = build_environment(CONFIGS[name], "DCRD", seed=3)
    env.execute()
    stats = env.ctx.network.stats
    pairs = [
        (stats.sent, stats._sent),
        (stats.volume, stats._volume),
        (stats.delivered, stats._delivered),
        (stats.lost_failure, stats._lost_failure),
        (stats.lost_random, stats._lost_random),
        (stats.lost_node_down, stats._lost_node_down),
        (stats.dropped_expired, stats._dropped_expired),
    ]
    for view, row in pairs:
        assert view.values() == tuple(row)
        assert dict(view.items()) == {
            kind: row[kind.idx] for kind in FrameKind
        }
        for kind in FrameKind:
            assert view[kind] == row[kind.idx]
    # The run actually exercised the counters.
    assert stats._sent[FrameKind.DATA.idx] > 0
    assert stats._sent[FrameKind.ACK.idx] > 0
    assert stats._lost_random[FrameKind.DATA.idx] > 0
    for kind in FrameKind:
        assert stats.delivered[kind] <= stats.sent[kind]


def test_facade_writes_reach_flat_rows_and_back():
    """The facade is a view, not a copy: writes propagate both ways."""
    env = build_environment(CONFIGS["lossy_mesh"], "DCRD", seed=0)
    stats = env.ctx.network.stats
    stats.sent[FrameKind.DATA] = 41
    assert stats._sent[FrameKind.DATA.idx] == 41
    stats._sent[FrameKind.DATA.idx] += 1
    assert stats.sent[FrameKind.DATA] == 42


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_direction_ids_stable_across_rebuilds(name):
    """Packed direction ids are identical across independent builds."""
    config = CONFIGS[name]
    first = build_environment(config, "DCRD", seed=7)
    second = build_environment(config, "DCRD", seed=7)
    keys_first = sorted(first.ctx.network._dir_cache)
    keys_second = sorted(second.ctx.network._dir_cache)
    assert keys_first == keys_second
    # Every id decodes to a real directed edge, and the interned table
    # covers exactly the directed edge set (prewarmed at build time).
    topology = first.ctx.network.topology
    directed = {
        key for u, v in topology.edges() for key in (_pack(u, v), _pack(v, u))
    }
    assert set(keys_first) == directed
    # Executing does not grow the table (no facade resolutions mid-run).
    first.execute()
    assert sorted(first.ctx.network._dir_cache) == keys_first
    assert first.ctx.network.dir_fallbacks == 0


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_subgroup_bitmaps_match_brute_force(name):
    """Per-topic subgroup aggregates equal brute-force spec iteration."""
    env = build_environment(CONFIGS[name], "DCRD", seed=11)
    workload = env.ctx.workload
    index = workload.index()
    assert workload.topics, "generated workload must not be empty"
    for spec in workload.topics:
        nodes = [sub.node for sub in spec.subscriptions]
        assert index.bits(spec.topic) == sum(1 << n for n in set(nodes))
        assert index.members(spec.topic) == frozenset(nodes)
        assert index.destinations(spec.topic) == frozenset(nodes)
        assert index.deadlines(spec.topic) == {
            sub.node: sub.deadline for sub in spec.subscriptions
        }
    # Topics nobody subscribes to are absent from the subgroup map but
    # answer membership queries consistently.
    assert index.members(10_000) == frozenset()
    assert index.bits(10_000) == 0


def test_subgroup_index_follows_churn():
    """Bitmaps and member sets track add/remove subscription churn."""
    env = build_environment(CONFIGS["regular"], "DCRD", seed=5)
    workload = env.ctx.workload
    index = workload.index()
    spec = workload.topics[0]
    topic = spec.topic
    absent = next(
        node
        for node in sorted(env.ctx.network.topology.nodes)
        if node not in spec.subscriber_nodes and node != spec.publisher
    )
    before_version = index.version

    workload.add_subscription(topic, Subscription(node=absent, deadline=1.0))
    index.refresh()
    assert index.version == workload.version != before_version
    assert absent in index.members(topic)
    assert index.bits(topic) & (1 << absent)
    assert index.deadlines(topic)[absent] == 1.0

    workload.remove_subscription(topic, absent)
    index.refresh()
    assert absent not in index.members(topic)
    assert not index.bits(topic) & (1 << absent)
    brute = sum(1 << n for n in set(workload.topic(topic).subscriber_nodes))
    assert index.bits(topic) == brute


def test_flat_path_holds_under_sanitize_and_trace():
    """Observation layers on: still zero facade fallbacks, full interning."""
    config = CONFIGS["lossy_mesh"].with_updates(sanitize=True, trace=True)
    env = build_environment(config, "DCRD", seed=2)
    summary = env.execute()
    perf = summary.perf
    assert perf["sanity.violations"] == 0
    assert perf["sanity.events_checked"] > 0
    assert perf["flat.dir_fallbacks"] == 0.0
    edges = len(list(env.ctx.network.topology.edges()))
    assert perf["flat.interned_directions"] == float(2 * edges)
    assert perf["flat.subgroup_lookups"] > 0
    assert perf["flat.subgroup_topics"] > 0
    # Timer probes are live, so the ARQ must run every timer eagerly.
    assert perf["arq.timers_elided"] == 0.0


def _outcome_digest(env):
    return sorted(
        (o.msg_id, o.subscriber, o.delivered, repr(o.delivery_time))
        for o in env.ctx.metrics.outcomes()
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_timer_elision_is_outcome_invariant(name):
    """Eager vs latent ARQ timers: bit-identical runs, fewer heap events.

    The runner enables elision by default; the eager twin flips it off
    after construction, leaving everything else (seeds, ids, schedule)
    untouched. Every observable — summary, per-pair outcomes, ARQ
    counters including the cancelled count (latent settles count as
    cancellations) — must match exactly; only the elision counter and the
    tombstone economy may differ.
    """
    config = CONFIGS[name]
    elided = build_environment(config, "DCRD", seed=13)
    assert elided.strategy.arq._elide_timers
    elided_summary = elided.execute()

    eager = build_environment(config, "DCRD", seed=13)
    eager.strategy.arq._elide_timers = False
    eager_summary = eager.execute()

    assert elided_summary.as_dict() == eager_summary.as_dict()
    assert _outcome_digest(elided) == _outcome_digest(eager)

    assert elided.strategy.arq.timers_elided > 0
    assert eager.strategy.arq.timers_elided == 0
    assert (
        elided.strategy.arq.timers_cancelled == eager.strategy.arq.timers_cancelled
    )
    assert (
        elided.strategy.arq.retransmissions == eager.strategy.arq.retransmissions
    )
    # The event streams are identical where it counts: executed events
    # match one for one (elided timers never existed; cancelled eager
    # timers were tombstones, which the kernel does not count).
    assert (
        elided.ctx.sim.processed_events == eager.ctx.sim.processed_events
    )

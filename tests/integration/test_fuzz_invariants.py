"""Property fuzz: random worlds, every strategy, universal invariants.

Hypothesis drives random (topology, hazard, workload, protocol, queueing)
settings through full simulations of every registered strategy — core and
extensions alike — and asserts the invariants no configuration may
violate:

* the run terminates and drains its event queue;
* delivered <= expected, on_time <= delivered; ratios in [0, 1];
* every delivered outcome has non-negative delay and hops >= 1 (except
  publisher-local deliveries);
* traffic counters are consistent (sent >= delivered per frame kind);
* the run is reproducible: a second run with the same seed matches, and a
  *sanitized* run matches too (the sanitizer observes, never perturbs).

Every fuzzed world runs under the SimSanitizer (``sanitize=True``), so the
whole invariant suite of :mod:`repro.sanity` — event-order, path-cycle,
duplicate-delivery, timer-lifecycle, Theorem-1 order, conservation — is
enforced inside every example on top of the explicit assertions below.

The worlds also run under the FrameTracer (``trace=True``), adding the
trace-level properties:

* every delivered pair's :meth:`~repro.trace.FrameTracer.journey` is a
  contiguous hop chain ending at the subscriber (and, for non-persistency
  strategies, starting at the publisher);
* its :meth:`~repro.trace.FrameTracer.delay_breakdown` components are
  non-negative and sum *exactly* (``==`` under ``math.fsum``, not
  ``approx``) to the recorded delivery delay.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

# Imported for its side effect: registers the extension strategies so the
# fuzz matrix below is the same regardless of test-collection order.
import repro.extensions  # noqa: F401
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import STRATEGIES, build_environment
from repro.overlay.links import FrameKind

configs = st.fixed_dictionaries(
    {
        "topology_kind": st.sampled_from(["full_mesh", "regular"]),
        "num_nodes": st.sampled_from([6, 10, 14]),
        "degree": st.sampled_from([3, 4, 5]),
        "failure_probability": st.sampled_from([0.0, 0.05, 0.2]),
        "loss_rate": st.sampled_from([0.0, 1e-3, 0.05]),
        "node_failure_probability": st.sampled_from([0.0, 0.05]),
        "m": st.sampled_from([1, 2]),
        "deadline_factor": st.sampled_from([1.5, 3.0]),
        "num_topics": st.sampled_from([2, 4]),
        # Finite-capacity links: FIFO and EDF disciplines, including the
        # EDF overload policy that drops already-expired frames.
        "link_service_time": st.sampled_from([None, 0.0005]),
        "queue_discipline": st.sampled_from(["fifo", "edf"]),
        "edf_drop_expired": st.booleans(),
        # Per-topic urgency classes (the priority extension's workload).
        "deadline_factor_choices": st.sampled_from([None, (1.5, 3.0, 6.0)]),
    }
)


def build_config(params) -> ExperimentConfig:
    if params["topology_kind"] == "full_mesh":
        params = dict(params, degree=None)
    return ExperimentConfig(
        duration=6.0, drain=4.0, sanitize=True, trace=True, **params
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs, seed=st.integers(min_value=0, max_value=999))
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_universal_invariants(strategy, params, seed):
    config = build_config(params)
    env = build_environment(config, strategy, seed)
    summary = env.execute()

    # Termination: nothing left ticking except (possibly) stopped periodic
    # processes' cancelled events.
    assert env.ctx.sim.now == config.end_time

    # The sanitizer really ran and found nothing (it raises on the first
    # violation, but the counter doubles as a liveness check).
    assert summary.perf["sanity.violations"] == 0
    assert summary.perf["sanity.events_checked"] > 0

    # Accounting sanity.
    assert 0 <= summary.on_time <= summary.delivered <= summary.expected_deliveries
    assert 0.0 <= summary.qos_delivery_ratio <= summary.delivery_ratio <= 1.0
    assert summary.data_transmissions >= 0
    stats = env.ctx.network.stats
    for kind in FrameKind:
        assert stats.delivered[kind] <= stats.sent[kind]

    # Outcome-level sanity.
    for outcome in env.ctx.metrics.outcomes():
        if outcome.delivered:
            assert outcome.delay >= 0.0
            if outcome.hops is not None:
                assert outcome.hops >= 0

    # Trace-level properties: every delivered pair reconstructs to a
    # contiguous journey whose delay decomposes exactly.
    tracer = env.tracer
    assert tracer is not None
    assert tracer.events_dropped == 0  # worlds fit the ring buffer
    for outcome in env.ctx.metrics.outcomes():
        if not outcome.delivered:
            continue
        journey = tracer.journey(outcome.msg_id, outcome.subscriber)
        assert journey.chain[-1] == outcome.subscriber
        for previous, current in zip(journey.hops, journey.hops[1:]):
            assert previous.dst == current.src
        if "persist" not in strategy:
            # Persistency-mode redeliveries legitimately restart at the
            # custody broker; everything else must chain from the origin.
            assert journey.complete
            assert journey.chain[0] == journey.origin
        breakdown = tracer.delay_breakdown(outcome.msg_id, outcome.subscriber)
        assert breakdown.total == outcome.delay
        assert breakdown.transmission >= 0.0
        assert breakdown.queueing >= 0.0
        assert breakdown.timeout_wait >= 0.0
        assert breakdown.retransmission >= 0.0
        assert (
            math.fsum(
                (
                    breakdown.transmission,
                    breakdown.queueing,
                    breakdown.timeout_wait,
                    breakdown.retransmission,
                )
            )
            == outcome.delay
        )

    # Hazard-free worlds with infinite-capacity links must be perfect for
    # every strategy. (Finite capacity is excluded: queueing can push a
    # frame past an ARQ timeout or — under edf_drop_expired — drop it.)
    if (
        config.failure_probability == 0.0
        and config.loss_rate == 0.0
        and config.node_failure_probability == 0.0
        and config.link_service_time is None
    ):
        assert summary.delivery_ratio == pytest.approx(1.0)


@settings(max_examples=6, deadline=None)
@given(params=configs, seed=st.integers(min_value=0, max_value=999))
def test_bitwise_reproducibility(params, seed):
    config = build_config(params).with_updates(sanitize=False)
    first = build_environment(config, "DCRD", seed).execute()
    second = build_environment(config, "DCRD", seed).execute()
    assert first.as_dict() == second.as_dict()

    # Observation-only: the sanitized run differs solely by its sanity.*
    # perf counters.
    sanitized = build_environment(
        config.with_updates(sanitize=True), "DCRD", seed
    ).execute()
    a = dict(first.as_dict())
    b = dict(sanitized.as_dict())
    a.pop("perf", None)
    b.pop("perf", None)
    assert a == b

    # Same guarantee for the FrameTracer: a traced run differs solely by
    # its trace.* perf counters.
    traced = build_environment(
        config.with_updates(trace=True), "DCRD", seed
    ).execute()
    c = dict(traced.as_dict())
    c.pop("perf", None)
    assert c == a

"""Property fuzz: random worlds, every strategy, universal invariants.

Hypothesis drives random (topology, hazard, workload, protocol) settings
through full simulations of every registered strategy and asserts the
invariants no configuration may violate:

* the run terminates and drains its event queue;
* delivered <= expected, on_time <= delivered; ratios in [0, 1];
* every delivered outcome has non-negative delay and hops >= 1 (except
  publisher-local deliveries);
* traffic counters are consistent (sent >= delivered per frame kind);
* the run is reproducible: a second run with the same seed matches.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import STRATEGIES, build_environment
from repro.overlay.links import FrameKind

configs = st.fixed_dictionaries(
    {
        "topology_kind": st.sampled_from(["full_mesh", "regular"]),
        "num_nodes": st.sampled_from([6, 10, 14]),
        "degree": st.sampled_from([3, 4, 5]),
        "failure_probability": st.sampled_from([0.0, 0.05, 0.2]),
        "loss_rate": st.sampled_from([0.0, 1e-3, 0.05]),
        "node_failure_probability": st.sampled_from([0.0, 0.05]),
        "m": st.sampled_from([1, 2]),
        "deadline_factor": st.sampled_from([1.5, 3.0]),
        "num_topics": st.sampled_from([2, 4]),
    }
)


def build_config(params) -> ExperimentConfig:
    if params["topology_kind"] == "full_mesh":
        params = dict(params, degree=None)
    return ExperimentConfig(duration=6.0, drain=4.0, **params)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=configs, seed=st.integers(min_value=0, max_value=999))
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_universal_invariants(strategy, params, seed):
    config = build_config(params)
    env = build_environment(config, strategy, seed)
    summary = env.execute()

    # Termination: nothing left ticking except (possibly) stopped periodic
    # processes' cancelled events.
    assert env.ctx.sim.now == config.end_time

    # Accounting sanity.
    assert 0 <= summary.on_time <= summary.delivered <= summary.expected_deliveries
    assert 0.0 <= summary.qos_delivery_ratio <= summary.delivery_ratio <= 1.0
    assert summary.data_transmissions >= 0
    stats = env.ctx.network.stats
    for kind in FrameKind:
        assert stats.delivered[kind] <= stats.sent[kind]

    # Outcome-level sanity.
    for outcome in env.ctx.metrics.outcomes():
        if outcome.delivered:
            assert outcome.delay >= 0.0
            if outcome.hops is not None:
                assert outcome.hops >= 0

    # Hazard-free worlds must be perfect for every strategy.
    if (
        config.failure_probability == 0.0
        and config.loss_rate == 0.0
        and config.node_failure_probability == 0.0
    ):
        assert summary.delivery_ratio == pytest.approx(1.0)


@settings(max_examples=6, deadline=None)
@given(params=configs, seed=st.integers(min_value=0, max_value=999))
def test_bitwise_reproducibility(params, seed):
    config = build_config(params)
    first = build_environment(config, "DCRD", seed).execute()
    second = build_environment(config, "DCRD", seed).execute()
    assert first.as_dict() == second.as_dict()

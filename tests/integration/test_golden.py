"""Golden regression pins: exact counters for one fixed world.

Every run derives deterministically from (config, strategy, seed), so these
exact integers must never change unless a deliberate behavioural change is
made — in which case updating them is part of reviewing that change.
(Ratios and delays are derived from these counters; pinning the integer
counters keeps the test readable and brittle in exactly the right way.)
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single

GOLDEN_CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    num_nodes=16,
    num_topics=5,
    failure_probability=0.06,
    duration=15.0,
    drain=5.0,
)

#: (strategy, delivered, on_time, data_transmissions, duplicates) at seed 123.
GOLDEN = [
    ("DCRD", 390, 381, 614, 0),
    ("R-Tree", 360, 360, 526, 0),
    ("D-Tree", 361, 361, 539, 0),
    ("ORACLE", 390, 389, 564, 0),
    ("Multipath", 388, 387, 1769, 325),
]


@pytest.mark.parametrize(
    "strategy,delivered,on_time,transmissions,duplicates",
    GOLDEN,
    ids=[row[0] for row in GOLDEN],
)
def test_golden_counters(strategy, delivered, on_time, transmissions, duplicates):
    summary = run_single(GOLDEN_CONFIG, strategy, seed=123)
    assert summary.delivered == delivered
    assert summary.on_time == on_time
    assert summary.data_transmissions == transmissions
    assert summary.duplicates == duplicates


def test_golden_expected_population():
    summary = run_single(GOLDEN_CONFIG, "DCRD", seed=123)
    assert summary.expected_deliveries == 390
    assert summary.messages_published == 75

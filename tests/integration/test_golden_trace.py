"""Golden-trace regression pin: one forced failover, byte-exact JSONL.

A diamond topology (fast route 0-1-3, slow route 0-2-3) with link 1-3
scripted dead forces the paper's full recovery sequence for one DCRD
message: the copy reaches broker 1, its transmission to 3 dies, the ACK
timer expires (m=1), broker 1 fails the hop over, finds no other
downstream candidate and *bounces* the copy back upstream to 0 (§III-D),
which re-dispatches over the slow branch — redelivering at 3 with the
revisit chain ``0 -> 1 -> 0 -> 2 -> 3``.

``data/golden_trace.jsonl`` pins the FrameTracer's JSONL export of that
run byte-for-byte: every event, timestamp, transfer id and info field.
The run derives deterministically from the scripted world, so any drift
is a behavioural change that must be reviewed (and the pin regenerated)
deliberately — exactly like the counter pins in ``test_golden.py``.

Regenerate after a reviewed change with::

    PYTHONPATH=src:. python -c "
    from tests.integration.test_golden_trace import write_golden; write_golden()"
"""

from pathlib import Path

import pytest

from repro import trace as _trace
from repro.core.forwarding import DcrdStrategy
from repro.trace import load_jsonl
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.jsonl"

#: The exact lifecycle sequence the scenario must produce (event kinds in
#: recording order; timestamps and ids are pinned by the JSONL file).
EXPECTED_KINDS = (
    "publish",  # root copy at origin 0
    "transmit",  # 0 -> 1 (fast route)
    "arrive",  # at 1
    "transmit",  # 1 -> 3, dies on the failed link...
    "link_drop",  # ...at departure
    "ack",  # 0's copy to 1 confirmed
    "ack_timeout",  # m=1 budget exhausted at 1
    "failover",  # hop 3 marked dead at 1
    "bounce",  # §III-D: back upstream to 0
    "transmit",  # 1 -> 0 (the bounce copy)
    "arrive",  # back at 0
    "transmit",  # 0 -> 2 (slow branch)
    "ack",  # bounce copy confirmed
    "arrive",  # at 2
    "transmit",  # 2 -> 3
    "ack",  # 0 -> 2 confirmed
    "arrive",  # at 3
    "deliver",  # redelivered
    "ack",  # 2 -> 3 confirmed
)


def traced_run():
    """Execute the scenario under a FrameTracer; returns (ctx, tracer)."""
    topo = make_topology(
        [
            (0, 1, 0.010),
            (1, 3, 0.010),
            (0, 2, 0.020),
            (2, 3, 0.020),
        ]
    )
    failures = ScriptedFailures({(1, 3): [(0.0, 1e9)]})
    workload = single_topic_workload(0, [(3, 1.0)])
    ctx = build_ctx(topo, workload, failures=failures, m=1)
    tracer = _trace.FrameTracer()
    _trace.install(tracer)
    try:
        strategy = DcrdStrategy(ctx)
        strategy.setup()
        attach_brokers(ctx, strategy)
        spec = workload.topics[0]
        ctx.metrics.expect(
            1, spec.topic, 0.0, {s.node: s.deadline for s in spec.subscriptions}
        )
        strategy.publish(spec, msg_id=1)
        ctx.sim.run(until=10.0)
    finally:
        _trace.uninstall()
    return ctx, tracer


def export_text(tracer) -> str:
    import io

    buffer = io.StringIO()
    tracer.export_jsonl(buffer)
    return buffer.getvalue()


def write_golden() -> None:  # pragma: no cover - regeneration helper
    from repro.pubsub.messages import reset_message_ids

    reset_message_ids()
    _, tracer = traced_run()
    GOLDEN_PATH.write_text(export_text(tracer), encoding="utf-8")


def test_trace_matches_pinned_jsonl_exactly():
    _, tracer = traced_run()
    assert export_text(tracer) == GOLDEN_PATH.read_text(encoding="utf-8")


def test_failover_bounce_redeliver_sequence():
    ctx, tracer = traced_run()
    assert ctx.metrics.outcome(1, 3).delivered
    events = tracer.events()
    assert tuple(e.kind for e in events) == EXPECTED_KINDS

    failover = next(e for e in events if e.kind == "failover")
    assert (failover.node, failover.peer) == (1, 3)
    bounce = next(e for e in events if e.kind == "bounce")
    assert (bounce.node, bounce.peer) == (1, 0)
    assert bounce.seq > failover.seq
    # The bounce copy really went back over the 1->0 direction.
    bounce_tx = next(e for e in events if e.kind == "transmit" and e.node == 1 and e.peer == 0)
    assert bounce_tx.transfer == bounce.transfer
    deliver = events[-2]
    assert deliver.kind == "deliver"
    assert deliver.node == 3
    assert deliver.seq > bounce.seq


def test_journey_chain_revisits_the_origin():
    _, tracer = traced_run()
    journey = tracer.journey(1, 3)
    assert journey.chain == (0, 1, 0, 2, 3)
    assert journey.complete
    assert journey.origin == 0
    assert all(hop.attempts == 1 for hop in journey.hops)
    for previous, current in zip(journey.hops, journey.hops[1:]):
        assert previous.dst == current.src


def test_delay_breakdown_blames_the_ack_timeout():
    ctx, tracer = traced_run()
    breakdown = tracer.delay_breakdown(1, 3)
    assert breakdown.total == ctx.metrics.outcome(1, 3).delay
    # The only non-propagation delay is broker 1 waiting out the ACK timer
    # before the failover (2*alpha + slack = 21 ms on the 10 ms link).
    assert breakdown.timeout_wait == pytest.approx(0.021)
    assert breakdown.retransmission == 0.0  # m=1: no same-link retries
    assert breakdown.queueing == 0.0
    assert breakdown.components_sum() == breakdown.total


def test_retransmission_tree_shows_the_dead_branch():
    _, tracer = traced_run()
    (root,) = tracer.retransmission_tree(1)
    assert (root["src"], root["dst"], root["fate"]) == (0, 1, "arrived")
    fates = {(c["src"], c["dst"]): c["fate"] for c in root["children"]}
    assert fates == {(1, 3): "lost", (1, 0): "arrived"}


def test_pinned_jsonl_reconstructs_the_journey_offline():
    """The exported artefact alone supports the full query API."""
    tracer = load_jsonl(str(GOLDEN_PATH))
    journey = tracer.journey(1, 3)
    assert journey.chain == (0, 1, 0, 2, 3)
    breakdown = tracer.delay_breakdown(1, 3)
    assert breakdown.components_sum() == breakdown.total
    assert breakdown.timeout_wait == pytest.approx(0.021)

"""Differential sim <-> live conformance suite.

Every scripted scenario (see :mod:`repro.live.scenarios`) runs twice —
once on the discrete-event kernel, once over real asyncio TCP sockets on
loopback — across multiple seeds, and the two executions must agree:

* **identical delivered-pair sets** — the same ``(message, subscriber)``
  pairs are delivered (and the same pairs given up) on both substrates;
* **at-most-once post-dedup** — no broker ever accepts the same transfer
  twice (the accept ledger's max count is 1 on both sides, and the
  sanitizer enforces it live);
* **ACK-timer settlement** — every started timer settles exactly once
  (started == settled, no orphan timers at drain);
* **sanitizer-clean** — both runs finish without a single invariant
  violation.

Scenario fault scripts are whole-run per-direction per-kind drop-all
rules, so the delivered-pair set is a timing-independent function of the
world — wall-clock jitter in the live run cannot change what gets
delivered, only when.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.live.runtime import run_live_scenario
from repro.live.scenarios import make_scenario, run_sim_scenario

#: The ISSUE's conformance matrix: >= 5 seeds x >= 3 scenario kinds.
SEEDS = (0, 1, 2, 3, 4)
KINDS = ("clean", "link_loss", "ack_loss")


def assert_conformant(sim: dict, live: dict) -> None:
    """The differential contract between one sim run and one live run."""
    # Identical delivered-pair sets (and identical give-ups).
    assert sim["delivered"] == live["delivered"]
    assert sim["gave_up"] == live["gave_up"]
    assert sim["deliveries"] == live["deliveries"]
    assert sim["published"] == live["published"]
    assert sim["expected"] == live["expected"]
    # At-most-once post-dedup on both substrates.
    assert sim["max_accepts_per_transfer"] <= 1
    assert live["max_accepts_per_transfer"] <= 1
    # Every ARQ copy settled; every timer settled exactly once.
    assert sim["in_flight"] == 0 and live["in_flight"] == 0
    assert sim["timers_started"] == sim["timers_settled"]
    assert live["timers_started"] == live["timers_settled"]
    # Sanitizer-clean (finish() already raised on any violation; the
    # counter is belt-and-braces).
    assert sim["violations"] == 0 and live["violations"] == 0


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", KINDS)
def test_sim_and_live_agree(kind, seed):
    sim = run_sim_scenario(make_scenario(kind), seed=seed, sanitize=True)
    live = run_live_scenario(make_scenario(kind), seed=seed, sanitize=True)
    assert_conformant(sim, live)
    # The scripted worlds keep every pair reachable, so conformance is
    # never satisfied by two empty runs.
    assert len(sim["delivered"]) == sim["expected"]


def test_failover_bounce_agrees():
    """The PR-4 diamond (dead fast path, upstream bounce) conforms too."""
    sim = run_sim_scenario(make_scenario("failover_bounce"), seed=0, sanitize=True)
    live = run_live_scenario(make_scenario("failover_bounce"), seed=0, sanitize=True)
    assert_conformant(sim, live)
    # The dead 1->3 link forces retransmission on both substrates.
    assert sim["retransmissions"] > 0
    assert live["retransmissions"] > 0


def test_adversarial_scenarios_exercise_recovery():
    """Loss scenarios must actually trigger ARQ recovery, not idle past it."""
    for kind in ("link_loss", "ack_loss"):
        sim = run_sim_scenario(make_scenario(kind), seed=0, sanitize=True)
        assert sim["retransmissions"] > 0, kind
        assert len(sim["delivered"]) == sim["expected"], kind


def test_launcher_differential_smoke():
    """The CLI launcher runs one differential scenario end to end."""
    repo = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [
            sys.executable,
            str(repo / "scripts" / "run_live.py"),
            "failover_bounce",
            "--seed",
            "2",
            "--differential",
        ],
        cwd=str(repo),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "AGREE" in result.stdout

"""Golden pin of the live diamond-failover run, time-quantized.

The wall-clock twin of ``test_golden_trace.py``: the same diamond world
(fast route 0-1-3 dead, §III-D bounce, redelivery over 0-2-3) runs over
real asyncio TCP sockets with imposed link delays of 0.1 s / 0.2 s, and
its normalized frame trace is pinned as JSONL in
``data/live_golden_trace.jsonl``.

Wall-clock runs cannot be pinned byte-exact, so the normalization makes
the trace deterministic instead:

* timestamps are quantized to 0.1 s buckets with *round-to-nearest* —
  every event in this world lands **on** a bucket multiple (link delays
  0.1/0.2, ACK timeout 3·0.1 + 0.1 = 0.4), so scheduler jitter of up to
  ±50 ms per event cannot move an event across a bucket boundary;
* events are reduced to ``{"q", "kind", "node", "peer", "msg",
  "transfer"}`` and sorted by that tuple — causal order within a bucket
  is not pinned, arrival order across sockets is not pinned, but the
  *set* of lifecycle events per bucket is;
* message/transfer ids are reproducible because the run starts from
  ``reset_message_ids()`` and the scenario is a single causal chain.

The same world is also pinned on the **multi-process** substrate
(``data/live_multiproc_golden_trace.jsonl``): two broker OS processes
(nodes {0, 2} and {1, 3}), the same 0.1 s buckets, with two extra
normalization steps — timestamps are taken relative to the scheduled
first-publish instant (the fleet synchronizes on a start epoch, so the
publish happens at ``START_DELAY``, not 0), and the striped transfer ids
are decomposed into ``(group, seq)`` so the per-process allocation
stripes pin stably.

Regenerate after a reviewed behavioural change with::

    PYTHONPATH=src:. python -c "
    from tests.integration.test_live_golden import write_live_golden; write_live_golden()"
    PYTHONPATH=src:. python -c "
    from tests.integration.test_live_golden import write_multiproc_golden; write_multiproc_golden()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import trace as _trace
from repro.live.broker import split_transfer_id
from repro.live.cluster import START_DELAY, run_cluster_scenario
from repro.live.faults import dead_link_rules
from repro.live.runtime import run_live_scenario
from repro.live.scenarios import Scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "live_golden_trace.jsonl"
MULTIPROC_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "live_multiproc_golden_trace.jsonl"
)

#: Quantization bucket width; all imposed delays are multiples of it.
QUANTUM = 0.1

#: Frame-lifecycle kinds the pin covers (timer/bookkeeping families have
#: substrate-specific tokens and are exercised elsewhere).
PINNED_KINDS = frozenset(
    {
        "publish",
        "transmit",
        "link_drop",
        "arrive",
        "dedup_discard",
        "deliver",
        "ack",
        "ack_timeout",
        "failover",
        "bounce",
    }
)


def golden_scenario() -> Scenario:
    """The diamond failover world with bucket-aligned timings."""
    return Scenario(
        name="live_golden",
        edges=((0, 1, 0.1), (1, 3, 0.1), (0, 2, 0.2), (2, 3, 0.2)),
        publisher=0,
        subscribers=((3, 10.0),),
        rules=lambda: dead_link_rules(1, 3),
        publishes=1,
        m=1,
        ack_timeout_factor=3.0,
        ack_timeout_slack=0.1,  # timeout = 3*0.1 + 0.1 = 0.4 = 4 buckets
    )


def normalize(tracer: _trace.FrameTracer):
    """Reduce a live trace to its deterministic, quantized skeleton."""
    rows = []
    for event in tracer.events():
        if event.kind not in PINNED_KINDS:
            continue
        rows.append(
            {
                "q": int(round(event.t / QUANTUM)),
                "kind": event.kind,
                "node": -1 if event.node is None else event.node,
                "peer": -1 if event.peer is None else event.peer,
                "msg": -1 if event.msg is None else event.msg,
                "transfer": -1 if event.transfer is None else event.transfer,
            }
        )
    rows.sort(
        key=lambda r: (r["q"], r["kind"], r["node"], r["peer"], r["msg"], r["transfer"])
    )
    return rows


def traced_live_run():
    tracer = _trace.FrameTracer()
    result = run_live_scenario(golden_scenario(), seed=0, sanitize=True, tracer=tracer)
    return result, tracer


def render(rows) -> str:
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def write_live_golden() -> None:  # pragma: no cover - regeneration helper
    _, tracer = traced_live_run()
    GOLDEN_PATH.write_text(render(normalize(tracer)), encoding="utf-8")


def normalize_multiproc(rows):
    """Quantize a merged cluster trace into the same deterministic form.

    Two extra steps versus :func:`normalize`: timestamps are re-based on
    the scheduled first-publish instant (``START_DELAY`` after the fleet
    epoch), and striped transfer ids are decomposed into ``(tg, ts)`` —
    the process stripe group and the in-group sequence — because the raw
    40-bit-shifted ids would make the pin unreadable and would change if
    the stripe width ever did.
    """
    out = []
    for t, kind, msg, transfer, node, peer in rows:
        if kind not in PINNED_KINDS:
            continue
        group, seq = (0, -1) if transfer is None else split_transfer_id(transfer)
        out.append(
            {
                "q": int(round((t - START_DELAY) / QUANTUM)),
                "kind": kind,
                "node": -1 if node is None else node,
                "peer": -1 if peer is None else peer,
                "msg": -1 if msg is None else msg,
                "tg": group,
                "ts": seq,
            }
        )
    out.sort(
        key=lambda r: (
            r["q"], r["kind"], r["node"], r["peer"], r["msg"], r["tg"], r["ts"],
        )
    )
    return out


def traced_multiproc_run():
    return run_cluster_scenario(
        golden_scenario(), seed=0, sanitize=True, processes=2, trace=True
    )


def write_multiproc_golden() -> None:  # pragma: no cover - regeneration helper
    result = traced_multiproc_run()
    MULTIPROC_GOLDEN_PATH.write_text(
        render(normalize_multiproc(result["trace"])), encoding="utf-8"
    )


def test_live_trace_matches_pinned_quantized_jsonl():
    result, tracer = traced_live_run()
    assert result["violations"] == 0
    assert render(normalize(tracer)) == GOLDEN_PATH.read_text(encoding="utf-8")


def test_live_golden_exercises_the_full_recovery_sequence():
    result, tracer = traced_live_run()
    kinds = [e.kind for e in tracer.events()]
    # The §III-D chain: drop on the dead link, budget exhausted, failover,
    # bounce upstream, redelivery over the slow branch.
    for kind in ("link_drop", "ack_timeout", "failover", "bounce", "deliver"):
        assert kind in kinds, kind
    assert result["delivered"] == frozenset({(1, 3)})
    # The delivery happens ~1.0 s in (0.1 publish hop + 0.4 timeout +
    # bounce and slow-branch hops); quantization must put it at bucket 10.
    deliver = next(e for e in tracer.events() if e.kind == "deliver")
    assert int(round(deliver.t / QUANTUM)) == 10


def test_multiproc_trace_matches_pinned_quantized_jsonl():
    result = traced_multiproc_run()
    assert result["violations"] == 0
    assert result["conservation"]["leaked"] == 0
    rendered = render(normalize_multiproc(result["trace"]))
    assert rendered == MULTIPROC_GOLDEN_PATH.read_text(encoding="utf-8")


def test_multiproc_golden_projects_onto_the_single_process_pin():
    """Strip the transfer ids and the two pins describe the same run.

    Transfer ids cannot match across substrates — the fleet stripes them
    per process while the single-process run numbers them globally — but
    the quantized ``(q, kind, node, peer, msg)`` event multiset must be
    identical: same publish, same drops on the dead link, same timeout /
    failover / bounce chain, same bucket-10 delivery over the slow branch.
    """
    def project(rows):
        return sorted(
            (r["q"], r["kind"], r["node"], r["peer"], r["msg"]) for r in rows
        )

    single = [json.loads(line) for line in
              GOLDEN_PATH.read_text(encoding="utf-8").splitlines()]
    multi = [json.loads(line) for line in
             MULTIPROC_GOLDEN_PATH.read_text(encoding="utf-8").splitlines()]
    assert project(multi) == project(single)
    # The striping itself is visible in the pin: node 0's partition
    # allocates in stripe 1, node 1's in stripe 2.
    groups = {r["tg"] for r in multi if r["tg"] > 0}
    assert groups == {1, 2}

"""Golden pin of the live diamond-failover run, time-quantized.

The wall-clock twin of ``test_golden_trace.py``: the same diamond world
(fast route 0-1-3 dead, §III-D bounce, redelivery over 0-2-3) runs over
real asyncio TCP sockets with imposed link delays of 0.1 s / 0.2 s, and
its normalized frame trace is pinned as JSONL in
``data/live_golden_trace.jsonl``.

Wall-clock runs cannot be pinned byte-exact, so the normalization makes
the trace deterministic instead:

* timestamps are quantized to 0.1 s buckets with *round-to-nearest* —
  every event in this world lands **on** a bucket multiple (link delays
  0.1/0.2, ACK timeout 3·0.1 + 0.1 = 0.4), so scheduler jitter of up to
  ±50 ms per event cannot move an event across a bucket boundary;
* events are reduced to ``{"q", "kind", "node", "peer", "msg",
  "transfer"}`` and sorted by that tuple — causal order within a bucket
  is not pinned, arrival order across sockets is not pinned, but the
  *set* of lifecycle events per bucket is;
* message/transfer ids are reproducible because the run starts from
  ``reset_message_ids()`` and the scenario is a single causal chain.

Regenerate after a reviewed behavioural change with::

    PYTHONPATH=src:. python -c "
    from tests.integration.test_live_golden import write_live_golden; write_live_golden()"
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import trace as _trace
from repro.live.faults import dead_link_rules
from repro.live.runtime import run_live_scenario
from repro.live.scenarios import Scenario

GOLDEN_PATH = Path(__file__).parent / "data" / "live_golden_trace.jsonl"

#: Quantization bucket width; all imposed delays are multiples of it.
QUANTUM = 0.1

#: Frame-lifecycle kinds the pin covers (timer/bookkeeping families have
#: substrate-specific tokens and are exercised elsewhere).
PINNED_KINDS = frozenset(
    {
        "publish",
        "transmit",
        "link_drop",
        "arrive",
        "dedup_discard",
        "deliver",
        "ack",
        "ack_timeout",
        "failover",
        "bounce",
    }
)


def golden_scenario() -> Scenario:
    """The diamond failover world with bucket-aligned timings."""
    return Scenario(
        name="live_golden",
        edges=((0, 1, 0.1), (1, 3, 0.1), (0, 2, 0.2), (2, 3, 0.2)),
        publisher=0,
        subscribers=((3, 10.0),),
        rules=lambda: dead_link_rules(1, 3),
        publishes=1,
        m=1,
        ack_timeout_factor=3.0,
        ack_timeout_slack=0.1,  # timeout = 3*0.1 + 0.1 = 0.4 = 4 buckets
    )


def normalize(tracer: _trace.FrameTracer):
    """Reduce a live trace to its deterministic, quantized skeleton."""
    rows = []
    for event in tracer.events():
        if event.kind not in PINNED_KINDS:
            continue
        rows.append(
            {
                "q": int(round(event.t / QUANTUM)),
                "kind": event.kind,
                "node": -1 if event.node is None else event.node,
                "peer": -1 if event.peer is None else event.peer,
                "msg": -1 if event.msg is None else event.msg,
                "transfer": -1 if event.transfer is None else event.transfer,
            }
        )
    rows.sort(
        key=lambda r: (r["q"], r["kind"], r["node"], r["peer"], r["msg"], r["transfer"])
    )
    return rows


def traced_live_run():
    tracer = _trace.FrameTracer()
    result = run_live_scenario(golden_scenario(), seed=0, sanitize=True, tracer=tracer)
    return result, tracer


def render(rows) -> str:
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def write_live_golden() -> None:  # pragma: no cover - regeneration helper
    _, tracer = traced_live_run()
    GOLDEN_PATH.write_text(render(normalize(tracer)), encoding="utf-8")


def test_live_trace_matches_pinned_quantized_jsonl():
    result, tracer = traced_live_run()
    assert result["violations"] == 0
    assert render(normalize(tracer)) == GOLDEN_PATH.read_text(encoding="utf-8")


def test_live_golden_exercises_the_full_recovery_sequence():
    result, tracer = traced_live_run()
    kinds = [e.kind for e in tracer.events()]
    # The §III-D chain: drop on the dead link, budget exhausted, failover,
    # bounce upstream, redelivery over the slow branch.
    for kind in ("link_drop", "ack_timeout", "failover", "bounce", "deliver"):
        assert kind in kinds, kind
    assert result["delivered"] == frozenset({(1, 3)})
    # The delivery happens ~1.0 s in (0.1 publish hop + 0.4 timeout +
    # bounce and slow-branch hops); quantization must put it at bucket 10.
    deliver = next(e for e in tracer.events() if e.kind == "deliver")
    assert int(round(deliver.t / QUANTUM)) == 10

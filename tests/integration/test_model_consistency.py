"""Consistency between the analytical control plane and the simulation.

The <d, r> tables are predictions; the simulator is ground truth. On
hazard-free networks the two must agree exactly; under random loss the
prediction must agree statistically.
"""

import pytest

from repro.core.forwarding import DcrdStrategy
from repro.overlay.topology import full_mesh, random_regular
from repro.pubsub.endpoints import PublisherProcess
from tests.conftest import attach_brokers, build_ctx, make_topology, single_topic_workload


def run_publishes(ctx, strategy, spec, count):
    publisher = PublisherProcess(ctx, strategy, spec, stop_time=count * spec.publish_interval - 0.5)
    publisher.start()
    ctx.sim.run(until=count * spec.publish_interval + 30.0)


def test_predicted_delay_matches_simulated_without_hazards(rng):
    topo = random_regular(10, 4, rng)
    workload = single_topic_workload(0, [(7, 10.0)])
    ctx = build_ctx(topo, workload)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    run_publishes(ctx, strategy, workload.topics[0], count=3)
    predicted = strategy.table(0, 7).state(0).d
    for outcome in ctx.metrics.outcomes():
        assert outcome.delay == pytest.approx(predicted, rel=1e-9)


def test_predicted_delivery_ratio_matches_loss_statistics():
    # Single link with 20% loss, m = 1: the table predicts r = 0.8 per
    # attempt from node 0; simulated first-attempt success rate must agree.
    topo = make_topology([(0, 1, 0.010)])
    workload = single_topic_workload(0, [(1, 10.0)])
    ctx = build_ctx(topo, workload, loss_rate=0.2, seed=5)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    predicted_r = strategy.table(0, 1).state(0).r
    assert predicted_r == pytest.approx(0.8)
    run_publishes(ctx, strategy, workload.topics[0], count=400)
    outcomes = ctx.metrics.outcomes()
    # With only one neighbour and m = 1, DCRD gets exactly one attempt per
    # packet (plus none after exhaustion): delivery ratio ~ r. ACK losses
    # do not change DATA delivery here because duplicates are deduped.
    delivered = sum(1 for o in outcomes if o.delivered) / len(outcomes)
    assert delivered == pytest.approx(predicted_r, abs=0.06)


def test_mesh_predictions_are_upper_bounded_by_deadline_feasibility(rng):
    # Every publisher-subscriber pair with deadline 3x shortest delay must
    # be predicted reachable (r > 0) on a healthy full mesh, and the
    # predicted delay must respect the deadline.
    topo = full_mesh(10, rng)
    from repro.pubsub.topics import generate_workload

    workload = generate_workload(topo, rng, num_topics=5)
    ctx = build_ctx(topo, workload)
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    for spec in workload.topics:
        for sub in spec.subscriptions:
            table = strategy.table(spec.topic, sub.node)
            assert table.reachable(spec.publisher)
            assert table.state(spec.publisher).d <= sub.deadline

"""Three-way sim <-> live <-> multi-process conformance suite.

Every scripted scenario runs three times — on the discrete-event kernel,
on the single-process asyncio TCP runtime, and on a fleet of broker OS
processes coordinated by :mod:`repro.live.cluster` — across 5 seeds x 4
scenario kinds, and all three executions must agree:

* **identical delivered-pair sets** (and identical give-ups) on all
  three substrates — the protocol modules were not touched by the
  multi-process deployment, and this matrix is the proof;
* **at-most-once post-dedup** — the max accept count per transfer is 1
  fleet-wide (transfer ids are striped per process, so a collision
  would surface here as a phantom duplicate);
* **exactly-once timer settlement** — every ARQ timer started in any
  process settles exactly once in that process;
* **sanitizer-clean** — each partition passes its local checks and the
  coordinator re-proves fleet-wide frame conservation from the merged
  ledgers (zero leaked pairs).

The fault scripts are whole-run per-direction drop-all rules, so the
delivered-pair set is timing-independent — process scheduling jitter
cannot change what is delivered on any substrate.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.live.cluster import ClusterError, LiveCluster, run_cluster_scenario
from repro.live.runtime import run_live_scenario
from repro.live.scenarios import SCENARIO_KINDS, make_scenario, run_sim_scenario

#: The ISSUE's matrix: 5 seeds x all 4 scenario kinds.
SEEDS = (0, 1, 2, 3, 4)

#: Fleet sizes per kind — enough processes that every scenario crosses
#: real process boundaries on its delivery path, small enough that the
#: 20-cell matrix stays inside the tier-1 budget.
PROCESSES = {"clean": 2, "link_loss": 3, "ack_loss": 2, "failover_bounce": 2}


def assert_three_way_conformant(sim: dict, live: dict, multi: dict) -> None:
    """The differential contract across all three substrates."""
    assert sim["delivered"] == live["delivered"] == multi["delivered"]
    assert sim["gave_up"] == live["gave_up"] == multi["gave_up"]
    assert sim["deliveries"] == live["deliveries"] == multi["deliveries"]
    assert sim["published"] == live["published"] == multi["published"]
    assert sim["expected"] == live["expected"] == multi["expected"]
    for result in (sim, live, multi):
        assert result["max_accepts_per_transfer"] <= 1
        assert result["in_flight"] == 0
        assert result["timers_started"] == result["timers_settled"]
        assert result["violations"] == 0
    # The coordinator's merged fleet-wide conservation: every expected
    # pair provably delivered/dropped/stranded, none leaked across a
    # process boundary.
    assert multi["conservation"]["leaked"] == 0
    assert multi["conservation"]["delivered"] == len(multi["delivered"])


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", SCENARIO_KINDS)
def test_sim_live_and_multiproc_agree(kind, seed):
    sim = run_sim_scenario(make_scenario(kind), seed=seed, sanitize=True)
    live = run_live_scenario(make_scenario(kind), seed=seed, sanitize=True)
    multi = run_cluster_scenario(
        make_scenario(kind), seed=seed, sanitize=True, processes=PROCESSES[kind]
    )
    assert_three_way_conformant(sim, live, multi)
    # The scripted worlds keep every pair reachable: conformance is never
    # satisfied by three empty runs.
    assert len(multi["delivered"]) == multi["expected"]


def test_multiproc_recovery_crosses_process_boundaries():
    """Loss scenarios must exercise real cross-process ARQ recovery."""
    for kind in ("link_loss", "failover_bounce"):
        multi = run_cluster_scenario(
            make_scenario(kind), seed=0, sanitize=True, processes=PROCESSES[kind]
        )
        assert multi["retransmissions"] > 0, kind
        assert len(multi["delivered"]) == multi["expected"], kind


def test_one_process_per_node_fleet():
    """The maximal deployment: every broker in its own OS process."""
    scenario = make_scenario("failover_bounce")
    sim = run_sim_scenario(make_scenario("failover_bounce"), seed=0, sanitize=True)
    multi = run_cluster_scenario(scenario, seed=0, sanitize=True, processes=4)
    assert sim["delivered"] == multi["delivered"]
    assert multi["violations"] == 0
    assert multi["conservation"]["leaked"] == 0


# ---------------------------------------------------------------------------
# Crash tolerance
# ---------------------------------------------------------------------------
def test_killed_broker_process_is_reported_not_hung():
    """Killing one broker mid-scenario must raise a ClusterError naming
    the dead process's nodes, well before the settle timeout would give
    up on a wedged-but-alive fleet."""
    scenario = make_scenario("clean")
    cluster = LiveCluster(scenario, seed=0, processes=3, settle_timeout=8.0)
    try:
        cluster.start()
        # Land the kill inside the publish window (first publish at
        # START_DELAY=0.5s): the fleet still has copies in flight toward
        # the victim, so without crash detection the coordinator would
        # poll until the settle deadline.
        time.sleep(0.2)
        victim_group = cluster.config.group_of(3)
        victim_nodes = sorted(cluster.config.groups[victim_group])
        cluster.kill_node(3)
        started = time.monotonic()
        with pytest.raises(ClusterError) as excinfo:
            cluster.wait_settled()
        elapsed = time.monotonic() - started
        message = str(excinfo.value)
        assert str(victim_nodes) in message
        assert "exited" in message
        # Detection is poll-driven (50ms sweeps), not timeout-driven.
        assert elapsed < 5.0
    finally:
        cluster.shutdown()


def test_shutdown_after_crash_is_clean():
    """Tearing down a fleet with a dead member must not raise."""
    cluster = LiveCluster(make_scenario("failover_bounce"), seed=0, processes=2)
    try:
        cluster.start()
        cluster.kill_node(0)
    finally:
        cluster.shutdown()  # must swallow the dead control channel


# ---------------------------------------------------------------------------
# CLI launcher
# ---------------------------------------------------------------------------
def test_launcher_multiproc_differential_smoke():
    """`run_live.py --processes N --differential` end to end."""
    repo = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [
            sys.executable,
            str(repo / "scripts" / "run_live.py"),
            "failover_bounce",
            "--seed",
            "1",
            "--processes",
            "2",
            "--differential",
        ],
        cwd=str(repo),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "AGREE" in result.stdout
    assert "multiproc[2]" in result.stdout

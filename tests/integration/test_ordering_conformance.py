"""Three-way sim <-> live <-> multi-process conformance of the ordering layer.

Each guarantee level runs the same scripted scenario on the discrete-
event kernel, the single-process asyncio TCP runtime, and a multi-
process broker fleet, sanitized, and the suite asserts:

* **delivery sets are untouched** — the hold-back pipelines reorder,
  they never lose or invent: delivered/gave-up pair sets are identical
  across all three substrates and identical to an ordering-off run;
* **the guarantee actually holds on every substrate** — with one
  publisher stream per scenario, each subscriber's first-delivery order
  must be the complete publish order (which also implies total-order
  agreement across subscribers), regardless of arrival jitter;
* **sanitizer-clean** — zero violations from the per-guarantee order
  checks while the runs execute, on all three substrates.

Duplicate copies (multipath ``m=2``) are delivered at timing-dependent
positions on purpose — the guarantee is about *first* deliveries, so the
comparison is over per-node first-occurrence subsequences.

The scenario timing constants (``SCENARIO_STALL_TIMEOUT``,
``SCENARIO_TOTAL_HOLD``) widen the hold-back windows far past worst-case
retransmit recovery, so wall-clock jitter cannot change what a pipeline
releases; live/cluster settle timeouts are raised accordingly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

import pytest

from repro.live.cluster import run_cluster_scenario
from repro.live.config import LiveConfig
from repro.live.runtime import run_live_scenario
from repro.live.scenarios import SCENARIO_KINDS, make_scenario, run_sim_scenario
from repro.ordering.spec import LEVELS

#: One three-way cell per guarantee level, on the scenario with real
#: retransmit-driven reordering pressure (link loss + ARQ recovery).
THREE_WAY_KIND = "link_loss"
THREE_WAY_PROCESSES = 3

#: Live settle must outlast the widened hold-back windows
#: (SCENARIO_TOTAL_HOLD=1.0 ages every frame; SCENARIO_STALL_TIMEOUT=4.0
#: bounds a worst-case watchdog chain) plus TCP jitter.
LIVE_CONFIG = LiveConfig(settle_timeout=15.0)
CLUSTER_SETTLE = 20.0


def ordered(kind: str, level: str) -> "Scenario":
    return replace(make_scenario(kind), ordering=level)


def first_delivery_sequences(result: Dict) -> Dict[int, List[int]]:
    """Per-node order of *first* deliveries (duplicates dropped)."""
    sequences: Dict[int, List[int]] = {}
    for msg, node in result["delivery_order"]:
        seq = sequences.setdefault(node, [])
        if msg not in seq:
            seq.append(msg)
    return sequences


def assert_guarantee_holds(result: Dict) -> None:
    """Single-stream scenarios: every level collapses to publish order."""
    assert result["violations"] == 0
    assert result["in_flight"] == 0
    sequences = first_delivery_sequences(result)
    for node, sequence in sequences.items():
        expected = sorted(
            msg for msg, subscriber in result["delivered"] if subscriber == node
        )
        assert sequence == expected, (
            f"node {node} first-delivery order {sequence} != publish "
            f"order {expected}"
        )


@pytest.mark.parametrize("level", LEVELS)
def test_sim_live_and_multiproc_agree_under_ordering(level):
    scenario = ordered(THREE_WAY_KIND, level)
    baseline = run_sim_scenario(make_scenario(THREE_WAY_KIND), seed=0, sanitize=True)
    sim = run_sim_scenario(ordered(THREE_WAY_KIND, level), seed=0, sanitize=True)
    live = run_live_scenario(
        ordered(THREE_WAY_KIND, level), seed=0, sanitize=True, config=LIVE_CONFIG
    )
    multi = run_cluster_scenario(
        scenario,
        seed=0,
        sanitize=True,
        processes=THREE_WAY_PROCESSES,
        settle_timeout=CLUSTER_SETTLE,
    )
    # Reorder-only: the ordering layer never changes *what* is delivered.
    assert sim["delivered"] == live["delivered"] == multi["delivered"]
    assert sim["delivered"] == baseline["delivered"]
    assert sim["gave_up"] == live["gave_up"] == multi["gave_up"] == frozenset()
    assert len(sim["delivered"]) == sim["expected"]
    for result in (sim, live, multi):
        assert_guarantee_holds(result)
    # With ascending-complete per-node sequences proven on each substrate,
    # the three substrates necessarily agree on every node's first-delivery
    # order — the cross-substrate conformance the tentpole promises.
    assert (
        first_delivery_sequences(sim)
        == first_delivery_sequences(live)
        == first_delivery_sequences(multi)
    )


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("kind", SCENARIO_KINDS)
def test_sim_matrix_every_kind_upholds_every_level(kind, level):
    """Cheap wide coverage: all scenario kinds x levels on the kernel."""
    baseline = run_sim_scenario(make_scenario(kind), seed=1, sanitize=True)
    sim = run_sim_scenario(ordered(kind, level), seed=1, sanitize=True)
    assert sim["delivered"] == baseline["delivered"]
    assert sim["gave_up"] == baseline["gave_up"]
    assert_guarantee_holds(sim)


def test_ordering_off_scenarios_are_bit_identical_to_seed_behaviour():
    """ordering=None must leave the scenario runs untouched end to end."""
    for kind in SCENARIO_KINDS:
        plain = run_sim_scenario(make_scenario(kind), seed=2, sanitize=True)
        nulled = run_sim_scenario(
            replace(make_scenario(kind), ordering=None), seed=2, sanitize=True
        )
        assert plain == nulled

"""Combined-observer runs over the probe bus (satellite of the bus refactor).

Three guarantees when ``--sanitize --trace --perf`` are stacked on one run:

* the observed run is bit-identical to an unobserved one (the comparison
  table the CLI prints must not change by a character);
* the sanitizer and the tracer see the *same* event stream — the fused
  callback chain hands every probe event to both, in attach order;
* tearing the run down detaches both observers, restoring every
  ``repro.probes`` slot to the literal-``None`` no-op state.
"""

import pytest

from repro import probes
from repro.cli import main
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment
from repro import sanity as _sanity
from repro import trace as _trace

COMBINED_CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=3,
    num_nodes=8,
    num_topics=3,
    failure_probability=0.05,
    duration=6.0,
    drain=3.0,
)

FAST_COMPARE = [
    "compare",
    "--duration", "4",
    "--nodes", "6",
    "--topics", "2",
    "--strategies", "DCRD",
    "--seed", "3",
]


def _comparison_table(out: str) -> str:
    """The strategy table only — the part that must be mode-invariant.

    The perf section (mode-dependent by design: it carries the observers'
    own counters) and the ``[trace written ...]`` notices are stripped.
    """
    head = out.split("Performance counters")[0]
    return "\n".join(
        line
        for line in head.splitlines()
        if line.strip() and not line.startswith("[trace written")
    )


def test_cli_combined_flags_match_plain_run(tmp_path, monkeypatch, capsys):
    """``--sanitize --trace --perf`` prints the same comparison table as a
    plain run, plus the observers' perf counters."""
    monkeypatch.chdir(tmp_path)
    assert main(FAST_COMPARE) == 0
    plain = capsys.readouterr().out

    assert main(FAST_COMPARE + ["--sanitize", "--trace", "--perf"]) == 0
    combined = capsys.readouterr().out

    assert _comparison_table(combined) == _comparison_table(plain)
    # Both observers surfaced through the merged perf snapshot.
    assert "sanity.events_checked" in combined
    assert "trace.events_recorded" in combined
    assert (tmp_path / "trace-DCRD.jsonl").exists()


def test_combined_observers_share_one_event_stream():
    """Sanitizer, tracer, and an external counter all subscribe to the same
    fused chains: per-family counts must agree across all three."""
    counters = probes.ProbeCounters()
    probes.attach(counters)
    try:
        config = COMBINED_CONFIG.with_updates(sanitize=True, trace=True)
        env = build_environment(config, "DCRD", seed=11)
        summary = env.execute()
    finally:
        probes.detach(counters)

    sanitizer, tracer = env.sanitizer, env.tracer
    assert sanitizer is not None and tracer is not None
    # Every kernel pop reached both built-in observers and the external one.
    assert sanitizer.events_checked == tracer.sim_events
    assert counters.counts["event_pop"] == tracer.sim_events > 0
    # Data-plane families line up with the tracer's recorded stream.
    by_kind = {}
    for event in tracer.events():
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    assert counters.counts["deliver"] == by_kind.get("deliver", 0) > 0
    assert counters.counts["publish"] == by_kind.get("publish", 0) > 0
    # The runner merged the external observer's counters into the summary.
    assert summary.perf["probes.event_pop"] == float(counters.counts["event_pop"])
    assert summary.perf["sanity.events_checked"] == float(
        sanitizer.events_checked
    )


def test_run_teardown_restores_noop_slots():
    """After a combined run finishes, the bus is empty again: every probe
    slot is the literal ``None`` no-op and no observer remains attached."""
    config = COMBINED_CONFIG.with_updates(sanitize=True, trace=True)
    env = build_environment(config, "DCRD", seed=5)
    # build_environment detaches its build-time sanitizer; execute() attaches
    # both observers for the run and must detach them again on the way out.
    assert probes.observers() == ()
    env.execute()
    assert probes.observers() == ()
    for family in probes.FAMILIES:
        assert getattr(probes, "on_" + family) is None
    assert _sanity.ACTIVE is None
    assert _trace.ACTIVE is None

"""Mutation smoke: deliberately break an invariant, the sanitizer must bite.

A sanitizer that never fires is indistinguishable from one that checks
nothing. These tests flip the test-only mutation flags in
:mod:`repro.sanity` — each one injects a specific, realistic bug — and
assert that the run dies with an :class:`InvariantViolation` of exactly
the matching kind:

* ``MUTATE_MISSORT_SENDING_LIST`` hands the data plane a sending list out
  of Theorem-1 (d, r) order → ``sending_list_order`` at table-build time;
* ``MUTATE_SKIP_TIMER_CANCEL`` leaks ACK timers instead of cancelling them
  when the ACK arrives → ``timer_orphan`` in the end-of-drain check.

With the sanitizer *off*, the flags must be completely inert — the flags
live inside sanitizer-guarded branches, so production runs cannot pay for
(or be bitten by) them.
"""

import pytest

from repro import sanity
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_environment, run_single
from repro.sanity import InvariantViolation

CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    num_nodes=16,
    num_topics=3,
    failure_probability=0.04,
    loss_rate=0.01,
    m=2,
    duration=6.0,
    drain=4.0,
    sanitize=True,
)


@pytest.fixture
def missort_mutation(monkeypatch):
    monkeypatch.setattr(sanity, "MUTATE_MISSORT_SENDING_LIST", True)


@pytest.fixture
def skip_cancel_mutation(monkeypatch):
    monkeypatch.setattr(sanity, "MUTATE_SKIP_TIMER_CANCEL", True)


def test_missorted_sending_list_is_caught(missort_mutation):
    """An out-of-order sending list dies at table construction."""
    with pytest.raises(InvariantViolation) as excinfo:
        # The violation fires inside strategy.setup(), i.e. already during
        # build_environment — before a single event runs.
        build_environment(CONFIG, "DCRD", seed=3)
    assert excinfo.value.kind == sanity.SENDING_LIST_ORDER
    report = excinfo.value.report()
    assert "sending_list_order" in report


def test_missort_does_not_leak_installed_sanitizer(missort_mutation):
    """An aborted build must uninstall its sanitizer (try/finally)."""
    with pytest.raises(InvariantViolation):
        build_environment(CONFIG, "DCRD", seed=3)
    assert sanity.ACTIVE is None


def test_leaked_ack_timer_is_caught(skip_cancel_mutation):
    """Skipping the ACK-path timer cancel surfaces as a timer orphan."""
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(CONFIG, "DCRD", seed=3)
    assert excinfo.value.kind == sanity.TIMER_ORPHAN
    assert excinfo.value.details["orphans"] >= 1


def test_violation_report_carries_context(skip_cancel_mutation):
    """The structured report names the kind and the offending details."""
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(CONFIG, "DCRD", seed=3)
    report = excinfo.value.report()
    assert "timer_orphan" in report
    assert "first_token" in report


def test_violation_report_embeds_trace_excerpt(skip_cancel_mutation):
    """--sanitize --trace: the violation carries the offending frame's
    lifecycle excerpt, captured at raise time from the installed tracer."""
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(CONFIG.with_updates(trace=True), "DCRD", seed=3)
    violation = excinfo.value
    assert violation.kind == sanity.TIMER_ORPHAN
    assert violation.frames  # the leaked timer's outstanding copy
    assert violation.trace_excerpt
    frame = violation.frames[0]
    # Every excerpt line is about the offending frame, and its lifecycle
    # (the transmit whose timer leaked) is actually in there.
    assert all(
        f"msg={frame.msg_id}" in line or f"transfer={frame.transfer_id}" in line
        for line in violation.trace_excerpt
    )
    assert any("transmit" in line for line in violation.trace_excerpt)
    report = violation.report()
    assert "trace excerpt:" in report
    assert violation.trace_excerpt[-1] in report


def test_excerpt_absent_without_tracer(skip_cancel_mutation):
    """Sanitize-only runs keep the old report shape (no excerpt section)."""
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(CONFIG, "DCRD", seed=3)
    assert excinfo.value.trace_excerpt == ()
    assert "trace excerpt:" not in excinfo.value.report()


@pytest.mark.parametrize(
    "flag", ["MUTATE_MISSORT_SENDING_LIST", "MUTATE_SKIP_TIMER_CANCEL"]
)
def test_mutations_inert_without_sanitizer(monkeypatch, flag):
    """Flags only matter under the sanitizer: plain runs are bit-identical."""
    plain_config = CONFIG.with_updates(sanitize=False)
    baseline = run_single(plain_config, "DCRD", seed=3).as_dict()
    monkeypatch.setattr(sanity, flag, True)
    mutated = run_single(plain_config, "DCRD", seed=3).as_dict()
    assert mutated == baseline

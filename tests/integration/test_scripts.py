"""Smoke tests for the top-level experiment driver script."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "run_experiments.py"


def run_script(tmp_path, *args):
    result = subprocess.run(
        [sys.executable, str(SCRIPT), "--out", str(tmp_path), *args],
        capture_output=True,
        text=True,
        timeout=900,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_single_figure_with_verification(tmp_path):
    out = run_script(
        tmp_path, "--duration", "8", "--repetitions", "1", "--only", "fig6"
    )
    assert (tmp_path / "fig6.txt").exists()
    assert "QoS Delivery Ratio" in out
    # The claim verifier ran and reported.
    assert "[PASS]" in out or "[FAIL]" in out


def test_extension_study_selection(tmp_path):
    out = run_script(
        tmp_path, "--duration", "8", "--repetitions", "1", "--only", "nodes"
    )
    assert (tmp_path / "extension_node_failures.txt").exists()
    assert "node crash probability" in out

"""Tests for the embedding façade (repro.system.PubSubSystem)."""

import pytest

from repro.system import Delivery, PubSubSystem
from repro.util.errors import ConfigurationError


@pytest.fixture
def system():
    return PubSubSystem.build(num_nodes=8, seed=7, loss_rate=0.0)


class TestTopics:
    def test_add_topic_and_subscribe(self, system):
        system.add_topic("alerts", publisher=0)
        system.subscribe("alerts", node=3, deadline=0.5)
        assert system.workload.topic(0).subscriber_nodes == (3,)

    def test_duplicate_topic_rejected(self, system):
        system.add_topic("alerts", publisher=0)
        with pytest.raises(ConfigurationError):
            system.add_topic("alerts", publisher=1)

    def test_unknown_publisher_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.add_topic("alerts", publisher=99)

    def test_unsubscribe(self, system):
        system.add_topic("alerts", publisher=0)
        system.subscribe("alerts", node=3, deadline=0.5)
        system.unsubscribe("alerts", node=3)
        assert system.workload.topic(0).subscriber_nodes == ()


class TestPublishAndDeliver:
    def test_callback_receives_payload(self, system):
        system.add_topic("tracks", publisher=0)
        received = []
        system.subscribe("tracks", node=5, deadline=0.5, callback=received.append)
        msg_id = system.publish("tracks", payload={"lat": 44.97})
        system.run(until=1.0)
        assert len(received) == 1
        delivery = received[0]
        assert isinstance(delivery, Delivery)
        assert delivery.payload == {"lat": 44.97}
        assert delivery.msg_id == msg_id
        assert delivery.topic == "tracks"
        assert delivery.subscriber == 5
        assert 0.0 < delivery.delay < 0.2

    def test_publish_without_subscribers_rejected(self, system):
        system.add_topic("void", publisher=0)
        with pytest.raises(ConfigurationError):
            system.publish("void")

    def test_multiple_subscribers_each_get_a_copy(self, system):
        system.add_topic("fanout", publisher=0)
        hits = []
        for node in (2, 4, 6):
            system.subscribe(
                "fanout", node=node, deadline=0.5,
                callback=lambda d: hits.append(d.subscriber),
            )
        system.publish("fanout")
        system.run(until=1.0)
        assert sorted(hits) == [2, 4, 6]

    def test_periodic_publisher(self, system):
        system.add_topic("ticks", publisher=1, publish_interval=0.5)
        count = []
        system.subscribe("ticks", node=2, deadline=0.5, callback=count.append)
        system.start_publisher("ticks", stop_time=2.2)
        system.run(until=3.0)
        assert len(count) == 5  # t = 0, 0.5, 1.0, 1.5, 2.0

    def test_summary_reflects_deliveries(self, system):
        system.add_topic("m", publisher=0)
        system.subscribe("m", node=1, deadline=0.5)
        system.publish("m")
        system.run(until=1.0)
        summary = system.summary()
        assert summary.delivered == 1
        assert summary.delivery_ratio == 1.0

    def test_runtime_subscribe_between_publishes(self, system):
        system.add_topic("live", publisher=0)
        early, late = [], []
        system.subscribe("live", node=2, deadline=0.5, callback=early.append)
        system.publish("live", payload="first")
        system.run(until=0.5)
        system.subscribe("live", node=3, deadline=0.5, callback=late.append)
        system.publish("live", payload="second")
        system.run(until=1.0)
        assert [d.payload for d in early] == ["first", "second"]
        assert [d.payload for d in late] == ["second"]


class TestStrategies:
    @pytest.mark.parametrize("name", ["DCRD", "D-Tree", "Multipath", "ORACLE"])
    def test_facade_works_with_every_strategy(self, name):
        system = PubSubSystem.build(num_nodes=6, seed=3, strategy=name, loss_rate=0.0)
        system.add_topic("t", publisher=0)
        got = []
        system.subscribe("t", node=4, deadline=0.5, callback=got.append)
        system.publish("t", payload=name)
        system.run(until=1.0)
        assert [d.payload for d in got] == [name]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            PubSubSystem.build(num_nodes=6, strategy="IP-multicast")

    def test_failures_are_survivable(self):
        system = PubSubSystem.build(
            num_nodes=10, degree=4, seed=5, failure_probability=0.2
        )
        system.add_topic("storm", publisher=0)
        got = []
        system.subscribe("storm", node=7, deadline=1.0, callback=got.append)
        for _ in range(10):
            system.publish("storm")
            system.run(until=system.now + 1.0)
        assert len(got) >= 9  # DCRD routes around the failures

"""WAN scenario: DCRD routing around trunk failures in a clustered overlay."""

import pytest

from repro.core.forwarding import DcrdStrategy
from repro.overlay.topology import clustered
from repro.routing.trees import DTreeStrategy
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    single_topic_workload,
)

ALWAYS = (0.0, 1e9)


def make_wan(rng):
    return clustered(3, 4, rng, trunks_per_cluster=2)


def trunk_edges(topo, size=4):
    return [
        (u, v) for u, v in topo.edges() if u // size != v // size
    ]


def run_strategy(strategy_cls, topo, publisher, subscriber, failures, deadline=2.0):
    workload = single_topic_workload(publisher, [(subscriber, deadline)])
    ctx = build_ctx(topo, workload, failures=failures)
    strategy = strategy_cls(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    ctx.metrics.expect(1, 0, 0.0, {subscriber: deadline})
    strategy.publish(workload.topics[0], msg_id=1)
    ctx.sim.run(until=30.0)
    return ctx


def test_dcrd_survives_single_trunk_cut(rng):
    topo = make_wan(rng)
    trunks = trunk_edges(topo)
    assert len(trunks) >= 3  # the scenario needs alternatives
    # Cut one trunk permanently; publisher in cluster 0, subscriber in 2.
    failures = ScriptedFailures({trunks[0]: [ALWAYS]})
    ctx = run_strategy(DcrdStrategy, topo, publisher=0, subscriber=11, failures=failures)
    assert ctx.metrics.outcome(1, 11).delivered


def test_dcrd_survives_cutting_every_direct_trunk_between_two_clusters(rng):
    topo = make_wan(rng)
    # Kill every trunk touching cluster 2 except those via cluster 1:
    # force a two-trunk detour (0 -> 1 -> 2) if one exists, else accept
    # unreachability — the assertion below recomputes ground truth.
    import networkx as nx

    cut = {
        edge: [ALWAYS]
        for edge in trunk_edges(topo)
        if (edge[0] // 4 == 0 and edge[1] // 4 == 2)
        or (edge[0] // 4 == 2 and edge[1] // 4 == 0)
    }
    failures = ScriptedFailures(cut)
    surviving = nx.Graph()
    surviving.add_nodes_from(topo.nodes)
    for edge in topo.edges():
        if edge not in failures.down:
            surviving.add_edge(*edge)
    reachable = nx.has_path(surviving, 0, 11)
    ctx = run_strategy(DcrdStrategy, topo, 0, 11, failures)
    assert ctx.metrics.outcome(1, 11).delivered == reachable


def test_fixed_tree_dies_on_its_trunk(rng):
    topo = make_wan(rng)
    # Find the trunk the D-Tree actually uses for 0 -> 11 and cut it.
    workload = single_topic_workload(0, [(11, 2.0)])
    probe_ctx = build_ctx(topo, workload)
    probe = DTreeStrategy(probe_ctx)
    probe.setup()
    path = [0]
    node = 0
    while node != 11:
        node = probe.next_hop(0, node, 11)
        path.append(node)
    used_trunks = [
        (path[i], path[i + 1])
        for i in range(len(path) - 1)
        if path[i] // 4 != path[i + 1] // 4
    ]
    assert used_trunks
    failures = ScriptedFailures({used_trunks[0]: [ALWAYS]})
    tree_ctx = run_strategy(DTreeStrategy, topo, 0, 11, failures)
    dcrd_ctx = run_strategy(DcrdStrategy, topo, 0, 11, failures)
    assert not tree_ctx.metrics.outcome(1, 11).delivered
    assert dcrd_ctx.metrics.outcome(1, 11).delivered

"""In-process tests of the multi-process broker partition seams.

The real deployment runs one :class:`PartitionRuntime` per OS process
(see ``tests/integration/test_multiproc_conformance.py``); these tests
run two partitions **on one asyncio loop** so the partition logic — the
split transport wiring, transfer-id striping, pre-registered
expectations, per-partition reports and merging — executes inside the
test process where coverage (and debuggers) can see it.

Co-locating partitions has one consequence the runtime is built to
tolerate: the probe bus is process-global, so each partition's ledger
observes both partitions' events and must filter to its hosted nodes at
report time. The sanitizer is exercised per-partition in the
single-partition test instead (two would contend for the global slot).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.live.broker import (
    PartitionRuntime,
    TRANSFER_STRIPE_BITS,
    install_transfer_stripe,
    split_transfer_id,
)
from repro.live.cluster import merge_reports, plan_cluster
from repro.live.config import LiveConfig
from repro.live.scenarios import make_scenario, run_sim_scenario
from repro.pubsub.messages import next_transfer_id, reset_message_ids
from repro.util.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Transfer-id striping
# ---------------------------------------------------------------------------
class TestTransferStripe:
    def test_striped_ids_live_in_disjoint_ranges(self):
        reset_message_ids()
        install_transfer_stripe(2)
        first = next_transfer_id()
        assert split_transfer_id(first) == (2, 1)
        install_transfer_stripe(5)
        assert split_transfer_id(next_transfer_id()) == (5, 1)
        reset_message_ids()
        assert split_transfer_id(next_transfer_id()) == (0, 1)

    def test_unstriped_ids_decompose_to_group_zero(self):
        assert split_transfer_id(1) == (0, 1)
        assert split_transfer_id((1 << TRANSFER_STRIPE_BITS) - 1) == (
            0,
            (1 << TRANSFER_STRIPE_BITS) - 1,
        )

    def test_invalid_group_rejected(self):
        with pytest.raises(ConfigurationError, match="stripe group"):
            install_transfer_stripe(0)


# ---------------------------------------------------------------------------
# Two partitions on one loop
# ---------------------------------------------------------------------------
def _partition_configs(scenario, groups):
    """One LiveConfig per group, sharing the full peer-address map."""
    nodes = sorted(scenario.topology().nodes)
    plan = plan_cluster(nodes, len(groups))
    peers = dict(plan.addresses)
    return [LiveConfig(peers=peers) for _ in groups]


async def _run_partitions(scenario, groups, seed=0):
    configs = _partition_configs(scenario, groups)
    runtimes = [
        PartitionRuntime(
            scenario,
            seed,
            group,
            config,
            sanitize=False,  # the probe-bus sanitizer slot is process-global
            stripe_group=min(group) + 1,
            manage_observers=(index == 0),  # one shared ledger install
        )
        for index, (group, config) in enumerate(zip(groups, configs))
    ]
    shared_ledger = runtimes[0].ledger
    for runtime in runtimes[1:]:
        runtime.ledger = shared_ledger
    try:
        # Start concurrently: each partition binds its servers before
        # dialing, and the dial-retry loop covers the boot ordering —
        # the same dance the real process fleet does.
        await asyncio.gather(*(runtime.start() for runtime in runtimes))
        publish_times = [
            0.05 + i * scenario.publish_interval
            for i in range(scenario.publishes)
        ]
        for runtime in runtimes:
            runtime.begin(time.time(), publish_times)
        deadline = asyncio.get_running_loop().time() + 10.0
        while asyncio.get_running_loop().time() < deadline:
            done = all(r.done_publishing for r in runtimes)
            in_flight = sum(r.strategy.arq.in_flight for r in runtimes)
            if done and in_flight == 0:
                break
            await asyncio.sleep(0.02)
        return [runtime.report() for runtime in runtimes]
    finally:
        for runtime in runtimes:
            await runtime.close()


def test_two_partitions_match_the_sim_delivered_set():
    scenario = make_scenario("failover_bounce")
    reports = asyncio.run(_run_partitions(scenario, [(0, 2), (1, 3)]))
    merged = merge_reports(scenario, reports, sanitize=False)
    sim = run_sim_scenario(make_scenario("failover_bounce"), seed=0, sanitize=False)
    assert merged["delivered"] == sim["delivered"]
    assert merged["gave_up"] == sim["gave_up"]
    assert merged["deliveries"] == sim["deliveries"]
    assert merged["in_flight"] == 0
    assert merged["published"] == scenario.publishes
    # The dead 1->3 link forces real recovery through the partition seam.
    assert merged["retransmissions"] > 0


def test_partition_reports_are_disjoint_by_node():
    scenario = make_scenario("failover_bounce")
    reports = asyncio.run(_run_partitions(scenario, [(0, 2), (1, 3)]))
    assert reports[0]["nodes"] == [0, 2]
    assert reports[1]["nodes"] == [1, 3]
    # The subscriber (node 3) lives in partition 1: all deliveries and
    # delivered pairs must be recorded there and only there.
    assert reports[0]["deliveries"] == []
    assert reports[0]["delivered"] == []
    assert len(reports[1]["delivered"]) == scenario.publishes
    # Only the publisher's partition publishes.
    assert reports[0]["published"] == scenario.publishes
    assert reports[1]["published"] == 0


# ---------------------------------------------------------------------------
# One partition hosting everything (sanitizer + report shape coverage)
# ---------------------------------------------------------------------------
async def _run_single_partition(scenario, seed=0):
    nodes = sorted(scenario.topology().nodes)
    config = _partition_configs(scenario, [tuple(nodes)])[0]
    runtime = PartitionRuntime(
        scenario, seed, nodes, config, sanitize=True, stripe_group=1
    )
    try:
        await runtime.start()
        publish_times = [
            0.05 + i * scenario.publish_interval
            for i in range(scenario.publishes)
        ]
        runtime.begin(time.time(), publish_times)
        deadline = asyncio.get_running_loop().time() + 10.0
        while asyncio.get_running_loop().time() < deadline:
            status = runtime.status()
            if status["done_publishing"] and status["in_flight"] == 0:
                break
            await asyncio.sleep(0.02)
        return runtime.report(), runtime.status()
    finally:
        await runtime.close()


def test_single_partition_is_sanitizer_clean_and_exports_ledgers():
    scenario = make_scenario("failover_bounce")
    report, status = asyncio.run(_run_single_partition(scenario))
    assert report["violations"] == 0
    assert report["timers_started"] == report["timers_settled"] > 0
    export = report["sanitizer"]
    assert export["transfers"], "partition export must carry transfer records"
    # Every exported transfer id sits in this partition's stripe.
    for tid, *_ in export["transfers"]:
        assert split_transfer_id(tid)[0] == 1
    assert status["activity"] > 0
    assert status["done_publishing"]


def test_partition_requires_at_least_one_node():
    with pytest.raises(ConfigurationError, match="at least one node"):
        PartitionRuntime(make_scenario("clean"), 0, [])


def test_merged_report_shape_matches_harvest_contract():
    scenario = make_scenario("failover_bounce")
    report, _ = asyncio.run(_run_single_partition(scenario))
    merged = merge_reports(scenario, [report], sanitize=True)
    for key in (
        "scenario",
        "published",
        "expected",
        "delivered",
        "gave_up",
        "duplicates",
        "max_accepts_per_transfer",
        "deliveries",
        "delays",
        "retransmissions",
        "abandoned",
        "in_flight",
        "timers_started",
        "timers_settled",
        "violations",
        "conservation",
    ):
        assert key in merged, key
    assert merged["conservation"]["leaked"] == 0
    assert merged["conservation"]["delivered"] == len(merged["delivered"])

"""Property tests of the cluster/peer-address configuration parsers.

A multi-process deployment is described twice — ``LiveConfig.peers``
inside each broker process, :class:`ClusterConfig` at the coordinator —
and both must reject every malformed plan at construction time: a port
collision or a duplicate node id that slips through only surfaces later
as a wedged fleet. Hypothesis drives the validators across generated
plans and targeted corruptions of known-good ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.live.cluster import ClusterConfig, allocate_ports, plan_cluster
from repro.live.config import LiveConfig
from repro.util.errors import ConfigurationError

ports = st.integers(min_value=1, max_value=65535)
node_sets = st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=12)


def _valid_config(nodes, process_count):
    """A well-formed plan over *nodes* split into *process_count* groups."""
    node_list = sorted(nodes)
    process_count = max(1, min(process_count, len(node_list)))
    groups = [node_list[i::process_count] for i in range(process_count)]
    addresses = {
        node: ("127.0.0.1", 10000 + i) for i, node in enumerate(node_list)
    }
    return ClusterConfig(
        groups=tuple(tuple(g) for g in groups if g),
        addresses=addresses,
        control=("127.0.0.1", 9999),
    )


# ---------------------------------------------------------------------------
# ClusterConfig
# ---------------------------------------------------------------------------
@given(nodes=node_sets, process_count=st.integers(min_value=1, max_value=6))
def test_valid_plans_construct_and_round_trip(nodes, process_count):
    config = _valid_config(nodes, process_count)
    assert set(config.nodes) == nodes
    # Every node is hosted by exactly one group, and group_of finds it.
    for node in nodes:
        assert node in config.groups[config.group_of(node)]
    rebuilt = ClusterConfig.from_dict(config.to_dict())
    assert rebuilt == config


@given(nodes=node_sets, process_count=st.integers(min_value=1, max_value=6),
       data=st.data())
def test_duplicate_node_across_groups_rejected(nodes, process_count, data):
    config = _valid_config(nodes, process_count)
    duplicated = data.draw(st.sampled_from(sorted(nodes)))
    groups = list(config.groups) + [(duplicated,)]
    with pytest.raises(ConfigurationError, match="appears in process groups"):
        ClusterConfig(groups=tuple(groups), addresses=config.addresses,
                      control=config.control)


@given(nodes=st.sets(st.integers(min_value=0, max_value=31), min_size=2,
                     max_size=12),
       data=st.data())
def test_port_collision_between_brokers_rejected(nodes, data):
    config = _valid_config(nodes, 2)
    victim, source = data.draw(
        st.permutations(sorted(nodes)).filter(lambda p: p[0] != p[1])
    )[:2]
    addresses = dict(config.addresses)
    addresses[victim] = addresses[source]
    with pytest.raises(ConfigurationError, match="address collision"):
        ClusterConfig(groups=config.groups, addresses=addresses,
                      control=config.control)


@given(nodes=node_sets, data=st.data())
def test_unreachable_peer_rejected(nodes, data):
    """A grouped node without a listen address is unreachable."""
    config = _valid_config(nodes, 1)
    dropped = data.draw(st.sampled_from(sorted(nodes)))
    addresses = {n: a for n, a in config.addresses.items() if n != dropped}
    with pytest.raises(ConfigurationError, match="unreachable"):
        ClusterConfig(groups=config.groups, addresses=addresses,
                      control=config.control)


@given(nodes=node_sets, data=st.data())
def test_control_port_colliding_with_broker_rejected(nodes, data):
    config = _valid_config(nodes, 1)
    node = data.draw(st.sampled_from(sorted(nodes)))
    with pytest.raises(ConfigurationError, match="control address"):
        ClusterConfig(groups=config.groups, addresses=config.addresses,
                      control=config.addresses[node])


@given(port=st.one_of(
    st.integers(min_value=-5, max_value=-1),
    st.integers(min_value=65536, max_value=70000),
))
def test_out_of_range_broker_port_rejected(port):
    with pytest.raises(ConfigurationError, match="port"):
        ClusterConfig(groups=((0,),), addresses={0: ("127.0.0.1", port)},
                      control=("127.0.0.1", 9999))


def test_empty_group_rejected():
    with pytest.raises(ConfigurationError, match="hosts no nodes"):
        ClusterConfig(groups=((0,), ()),
                      addresses={0: ("127.0.0.1", 10000)},
                      control=("127.0.0.1", 9999))


def test_no_groups_rejected():
    with pytest.raises(ConfigurationError, match="at least one process group"):
        ClusterConfig(groups=())


def test_unknown_config_field_rejected():
    good = _valid_config({0, 1}, 2).to_dict()
    good["surprise"] = 1
    with pytest.raises(ConfigurationError, match="unknown cluster config"):
        ClusterConfig.from_dict(good)


def test_group_of_unknown_node_rejected():
    config = _valid_config({0, 1}, 1)
    with pytest.raises(ConfigurationError, match="not in any process group"):
        config.group_of(7)


# ---------------------------------------------------------------------------
# plan_cluster / allocate_ports
# ---------------------------------------------------------------------------
@given(nodes=node_sets, processes=st.integers(min_value=1, max_value=8))
@settings(max_examples=20)  # binds real sockets; keep the example count low
def test_plan_cluster_produces_valid_configs(nodes, processes):
    config = plan_cluster(sorted(nodes), processes)
    assert set(config.nodes) == nodes
    assert len(config.groups) == min(processes, len(nodes))
    # Distinct ports for every broker and the control server.
    all_ports = [port for _, port in config.addresses.values()]
    all_ports.append(config.control[1])
    assert len(set(all_ports)) == len(all_ports)


def test_plan_cluster_rejects_empty_and_nonpositive():
    with pytest.raises(ConfigurationError, match="no nodes"):
        plan_cluster([], 2)
    with pytest.raises(ConfigurationError, match="processes"):
        plan_cluster([0, 1], 0)


def test_allocate_ports_are_distinct():
    assert len(set(allocate_ports(8))) == 8


# ---------------------------------------------------------------------------
# LiveConfig.peers (the per-process half of the same surface)
# ---------------------------------------------------------------------------
@given(nodes=st.sets(st.integers(min_value=0, max_value=31), min_size=2,
                     max_size=12),
       data=st.data())
def test_live_config_peer_port_collision_rejected(nodes, data):
    node_list = sorted(nodes)
    peers = {node: ("127.0.0.1", 20000 + i) for i, node in enumerate(node_list)}
    a, b = data.draw(st.permutations(node_list))[:2]
    peers[a] = peers[b]
    with pytest.raises(ConfigurationError, match="duplicate peer address"):
        LiveConfig(peers=peers)


@given(nodes=node_sets)
def test_live_config_distinct_peers_accepted(nodes):
    peers = {node: ("127.0.0.1", 20000 + i) for i, node in enumerate(sorted(nodes))}
    config = LiveConfig(peers=peers)
    for node in nodes:
        assert config.address_of(node) == peers[node]

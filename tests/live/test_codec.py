"""Wire-codec tests: canonical round-trips and strict rejection."""

from __future__ import annotations

import json
import math

import pytest

from repro.live.codec import LENGTH_PREFIX, CodecError, FrameCodec
from repro.pubsub.messages import AckFrame, PacketFrame


def make_packet(**overrides) -> PacketFrame:
    fields = dict(
        msg_id=7,
        transfer_id=42,
        topic=3,
        origin=0,
        publish_time=1.25,
        destinations=frozenset({2, 5, 1}),
        routing_path=(0, 4),
        source_route=(),
        fragment_index=-1,
        fragments_needed=0,
        size=1.0,
        priority=2.5,
    )
    fields.update(overrides)
    return PacketFrame(**fields)


class TestRoundTrip:
    def test_packet_round_trips(self):
        codec = FrameCodec()
        frame = make_packet()
        sender, decoded = codec.decode_payload(codec.encode_payload(4, frame))
        assert sender == 4
        assert decoded.msg_id == frame.msg_id
        assert decoded.transfer_id == frame.transfer_id
        assert decoded.topic == frame.topic
        assert decoded.origin == frame.origin
        assert decoded.publish_time == frame.publish_time
        assert decoded.destinations == frame.destinations
        assert decoded.routing_path == frame.routing_path
        assert decoded.source_route == frame.source_route
        assert decoded.fragment_index == frame.fragment_index
        assert decoded.fragments_needed == frame.fragments_needed
        assert decoded.size == frame.size
        assert decoded.priority == frame.priority

    def test_ack_round_trips(self):
        codec = FrameCodec()
        ack = AckFrame(msg_id=9, acker=3, transfer_id=77)
        sender, decoded = codec.decode_payload(codec.encode_payload(3, ack))
        assert sender == 3
        assert isinstance(decoded, AckFrame)
        assert (decoded.msg_id, decoded.acker, decoded.transfer_id) == (9, 3, 77)

    def test_infinite_priority_survives(self):
        codec = FrameCodec()
        frame = make_packet(priority=math.inf)
        _, decoded = codec.decode_payload(codec.encode_payload(0, frame))
        assert decoded.priority == math.inf

    def test_encoding_is_canonical(self):
        """Same frame -> same bytes, independent of set iteration order."""
        codec = FrameCodec()
        a = make_packet(destinations=frozenset({5, 1, 2}))
        b = make_packet(destinations=frozenset({2, 5, 1}))
        assert codec.encode_payload(0, a) == codec.encode_payload(0, b)

    def test_full_message_layout(self):
        codec = FrameCodec()
        ack = AckFrame(msg_id=1, acker=2, transfer_id=3)
        message = codec.encode(2, ack)
        length = codec.split_prefix(message[:4])
        payload = message[4:]
        assert length == len(payload)
        sender, decoded = codec.decode_payload(payload)
        assert sender == 2 and decoded.transfer_id == 3


class TestRejection:
    def test_unknown_frame_type_rejected(self):
        with pytest.raises(CodecError, match="cannot encode"):
            FrameCodec().encode_payload(0, object())

    def test_oversized_encode_rejected(self):
        codec = FrameCodec(max_frame_bytes=16)
        with pytest.raises(CodecError, match="exceeds"):
            codec.encode_payload(0, make_packet())

    def test_oversized_prefix_rejected(self):
        codec = FrameCodec(max_frame_bytes=64)
        with pytest.raises(CodecError, match="length prefix"):
            codec.split_prefix(LENGTH_PREFIX.pack(65))

    def test_garbage_payload_rejected(self):
        with pytest.raises(CodecError, match="malformed"):
            FrameCodec().decode_payload(b"\xff\x00 not json")

    def test_unknown_kind_rejected(self):
        payload = json.dumps({"s": 0, "k": "x"}).encode()
        with pytest.raises(CodecError, match="unknown frame kind"):
            FrameCodec().decode_payload(payload)

    def test_missing_field_rejected(self):
        payload = json.dumps({"s": 0, "k": "a", "m": 1}).encode()
        with pytest.raises(CodecError, match="malformed"):
            FrameCodec().decode_payload(payload)

    def test_non_int_sender_rejected(self):
        payload = json.dumps({"s": "zero", "k": "a", "m": 1, "n": 2, "t": 3}).encode()
        with pytest.raises(CodecError):
            FrameCodec().decode_payload(payload)

    def test_zero_frame_limit_rejected(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FrameCodec(max_frame_bytes=0)

"""Fault-shim matrix: per-seed determinism and byte transparency."""

from __future__ import annotations

import pytest

from repro.live.faults import (
    ACK,
    DATA,
    DropRule,
    FaultInjector,
    ack_loss_rules,
    dead_link_rules,
    kind_label,
    link_filter,
)
from repro.overlay.links import FrameKind
from repro.util.errors import ConfigurationError


def replay(shim: FaultInjector, frames) -> list:
    """Feed a frame schedule through the shim and record every plan."""
    return [shim.plan(src, dst, kind, payload) for src, dst, kind, payload in frames]


def schedule(n: int = 40):
    """A deterministic mixed DATA/ACK frame schedule on two directions."""
    frames = []
    for i in range(n):
        src, dst = ((0, 1), (1, 0))[i % 2]
        kind = DATA if i % 3 else ACK
        frames.append((src, dst, kind, f"payload-{i}".encode()))
    return frames


class TestTransparency:
    def test_inactive_shim_is_byte_transparent(self):
        shim = FaultInjector(seed=123)
        assert shim.transparent
        payload = b"\x00\x01frame"
        plan = shim.plan(0, 1, DATA, payload)
        assert len(plan) == 1
        extra, out = plan[0]
        assert extra == 0.0
        assert out is payload  # the identical object, not a copy

    def test_inactive_shim_consumes_no_randomness(self):
        shim = FaultInjector(seed=55)
        state_before = shim._rng.getstate()
        replay(shim, schedule())
        assert shim._rng.getstate() == state_before
        assert shim.dropped == shim.duplicated == shim.reordered == 0

    def test_delay_only_shim_delays_every_frame(self):
        shim = FaultInjector(seed=1, delay=0.05)
        for plan in replay(shim, schedule(10)):
            assert len(plan) == 1
            assert plan[0][0] == pytest.approx(0.05)
        assert shim.delayed == 10


class TestDeterminism:
    @pytest.mark.parametrize(
        "knobs",
        [
            {"drop": 0.3},
            {"duplicate": 0.4},
            {"reorder": 0.5},
            {"delay": 0.02, "delay_jitter": 0.01},
            {"drop": 0.2, "duplicate": 0.2, "reorder": 0.2, "delay": 0.01},
        ],
        ids=["drop", "duplicate", "reorder", "delay", "mixed"],
    )
    def test_same_seed_same_plans(self, knobs):
        frames = schedule()
        plans_a = replay(FaultInjector(seed=77, **knobs), frames)
        plans_b = replay(FaultInjector(seed=77, **knobs), frames)
        assert plans_a == plans_b

    def test_different_seeds_diverge(self):
        frames = schedule(200)
        plans_a = replay(FaultInjector(seed=1, drop=0.5), frames)
        plans_b = replay(FaultInjector(seed=2, drop=0.5), frames)
        assert plans_a != plans_b

    def test_drop_rate_is_respected(self):
        shim = FaultInjector(seed=9, drop=0.5)
        replay(shim, schedule(400))
        assert 120 <= shim.dropped <= 280  # ~200 expected

    def test_duplicate_emits_two_copies(self):
        shim = FaultInjector(seed=4, duplicate=1.0)
        payload = b"dup-me"
        plan = shim.plan(0, 1, DATA, payload)
        assert [p for _, p in plan] == [payload, payload]
        assert shim.duplicated == 1

    def test_reorder_swaps_adjacent_frames(self):
        shim = FaultInjector(seed=0, reorder=1.0)
        first = shim.plan(0, 1, DATA, b"A")
        assert first == []  # held back
        second = shim.plan(0, 1, DATA, b"B")
        assert [p for _, p in second] == [b"B", b"A"]  # adjacent swap
        assert shim.reordered == 1

    def test_reorder_hold_is_per_direction(self):
        shim = FaultInjector(seed=0, reorder=1.0)
        assert shim.plan(0, 1, DATA, b"A") == []
        assert shim.plan(1, 0, DATA, b"X") == []  # other direction: own slot
        assert [p for _, p in shim.plan(0, 1, DATA, b"B")] == [b"B", b"A"]

    def test_flush_releases_held_frames(self):
        shim = FaultInjector(seed=0, reorder=1.0)
        shim.plan(0, 1, DATA, b"held")
        released = shim.flush()
        assert [p for _, p in released] == [b"held"]
        assert shim.flush() == []


class TestScriptedRules:
    def test_dead_link_drops_both_directions_and_kinds(self):
        shim = FaultInjector(rules=dead_link_rules(0, 1))
        assert shim.plan(0, 1, DATA, b"d") == []
        assert shim.plan(1, 0, ACK, b"a") == []
        assert shim.plan(0, 2, DATA, b"other") != []
        assert shim.dropped == 2

    def test_ack_loss_is_kind_and_direction_scoped(self):
        shim = FaultInjector(rules=ack_loss_rules(1, 0))
        assert shim.plan(1, 0, ACK, b"a") == []
        assert shim.plan(1, 0, DATA, b"d") != []  # DATA passes
        assert shim.plan(0, 1, ACK, b"a") != []  # reverse direction passes

    def test_count_bounded_rule_exhausts(self):
        shim = FaultInjector(rules=(DropRule(src=0, dst=1, kind=DATA, count=2),))
        assert shim.plan(0, 1, DATA, b"1") == []
        assert shim.plan(0, 1, DATA, b"2") == []
        assert shim.plan(0, 1, DATA, b"3") != []  # budget exhausted
        assert shim.dropped == 2

    def test_scripted_rules_consume_no_randomness(self):
        shim = FaultInjector(seed=3, rules=dead_link_rules(0, 1))
        state = shim._rng.getstate()
        replay(shim, schedule())
        assert shim._rng.getstate() == state

    def test_link_filter_matches_shim_decisions(self):
        """The sim-side adapter drops exactly what the live shim drops."""
        frames = [
            (0, 1, FrameKind.DATA),
            (1, 0, FrameKind.ACK),
            (0, 1, FrameKind.ACK),
            (2, 1, FrameKind.DATA),
        ]
        shim = FaultInjector(rules=ack_loss_rules(1, 0))
        fault = link_filter(ack_loss_rules(1, 0))
        for src, dst, kind in frames:
            live_dropped = shim.plan(src, dst, kind_label(kind), b"x") == []
            sim_dropped = fault(src, dst, kind, object())
            assert live_dropped == sim_dropped

    def test_kind_label_mapping(self):
        assert kind_label(FrameKind.DATA) == DATA
        assert kind_label(FrameKind.ACK) == ACK


class TestValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(drop=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(delay=-0.1)

    def test_bad_rule_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DropRule(kind="probe")

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DropRule(count=0)

"""Round-trip tests for serialized scenarios and fault-shim rules.

A multi-process run ships the scenario — fault script included — to every
broker process as JSON; the sim side of the differential suite adapts the
same specs through ``link_filter``. If the rules did not survive the
round trip bit-exact, each process would face a *different* adversary and
the conformance matrix would be comparing different worlds.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.live.faults import (
    ACK,
    DATA,
    DropRule,
    ack_loss_rules,
    dead_link_rules,
    link_filter,
)
from repro.live.scenarios import (
    SCENARIO_KINDS,
    make_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.util.errors import ConfigurationError

rule_strategy = st.builds(
    DropRule,
    src=st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
    dst=st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
    kind=st.sampled_from([None, DATA, ACK]),
    count=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
)


# ---------------------------------------------------------------------------
# DropRule round trip
# ---------------------------------------------------------------------------
@given(rule=rule_strategy)
def test_drop_rule_round_trips_through_json(rule):
    rebuilt = DropRule.from_dict(json.loads(json.dumps(rule.to_dict())))
    assert (rebuilt.src, rebuilt.dst, rebuilt.kind, rebuilt.count) == (
        rule.src,
        rule.dst,
        rule.kind,
        rule.count,
    )
    # State never travels: a deserialized rule has a fresh drop budget.
    assert rebuilt.dropped == 0


def test_drop_rule_state_is_not_serialized():
    rule = DropRule(src=1, dst=3, count=2)
    rule.consume()
    assert rule.dropped == 1
    assert "dropped" not in rule.to_dict()
    assert DropRule.from_dict(rule.to_dict()).dropped == 0


def test_drop_rule_unknown_field_rejected():
    with pytest.raises(ConfigurationError, match="unknown DropRule"):
        DropRule.from_dict({"src": 0, "burst": 3})


def test_drop_rule_invalid_values_rejected_on_rebuild():
    with pytest.raises(ConfigurationError, match="kind"):
        DropRule.from_dict({"kind": "probe"})
    with pytest.raises(ConfigurationError, match="count"):
        DropRule.from_dict({"count": 0})


@given(rule=rule_strategy, frames=st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.sampled_from([DATA, ACK]),
    ),
    max_size=20,
))
def test_rebuilt_rules_drop_the_identical_frame_sequence(rule, frames):
    """The sim-side contract: serialized rules make the same decisions."""
    original = DropRule.from_dict(rule.to_dict())
    rebuilt = DropRule.from_dict(json.loads(json.dumps(rule.to_dict())))
    for src, dst, kind in frames:
        a = original.matches(src, dst, kind)
        b = rebuilt.matches(src, dst, kind)
        assert a == b
        if a:
            original.consume()
            rebuilt.consume()
    assert original.dropped == rebuilt.dropped


# ---------------------------------------------------------------------------
# Scenario round trip
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", SCENARIO_KINDS)
def test_scenario_round_trips_through_json(kind):
    scenario = make_scenario(kind)
    data = json.loads(json.dumps(scenario_to_dict(scenario)))
    rebuilt = scenario_from_dict(data)
    assert rebuilt.name == scenario.name
    assert tuple(rebuilt.edges) == tuple(
        tuple(edge) for edge in scenario.edges
    )
    assert rebuilt.publisher == scenario.publisher
    assert tuple(rebuilt.subscribers) == tuple(
        tuple(sub) for sub in scenario.subscribers
    )
    assert rebuilt.publishes == scenario.publishes
    assert rebuilt.m == scenario.m
    assert [r.to_dict() for r in rebuilt.rules()] == [
        r.to_dict() for r in scenario.rules()
    ]


@pytest.mark.parametrize("kind", SCENARIO_KINDS)
def test_rebuilt_rules_callable_returns_fresh_state(kind):
    rebuilt = scenario_from_dict(scenario_to_dict(make_scenario(kind)))
    first = rebuilt.rules()
    for rule in first:
        if rule.matches(rule.src or 0, rule.dst or 0, rule.kind or DATA):
            rule.consume()
    # A second call must not see the first call's consumed budgets.
    assert all(rule.dropped == 0 for rule in rebuilt.rules())


def test_scenario_unknown_field_rejected():
    data = scenario_to_dict(make_scenario("clean"))
    data["chaos"] = True
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        scenario_from_dict(data)


def test_scenario_bad_rule_spec_rejected_eagerly():
    data = scenario_to_dict(make_scenario("link_loss"))
    data["rules"][0]["kind"] = "probe"
    with pytest.raises(ConfigurationError, match="kind"):
        scenario_from_dict(data)


def test_link_filter_from_deserialized_rules_matches_original():
    """The same serialized adversary, applied at the sim seam."""
    for rules in (dead_link_rules(0, 3), ack_loss_rules(3, 0)):
        specs = [rule.to_dict() for rule in rules]
        original = link_filter([DropRule.from_dict(s) for s in specs])
        rebuilt = link_filter(
            [DropRule.from_dict(json.loads(json.dumps(s))) for s in specs]
        )

        class _Kind:
            def __init__(self, value):
                self.value = value

        for src, dst, kind in [(0, 3, "data"), (3, 0, "ack"), (1, 2, "data")]:
            assert original(src, dst, _Kind(kind), None) == rebuilt(
                src, dst, _Kind(kind), None
            )

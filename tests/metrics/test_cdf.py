"""Unit and property tests for the CDF helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.cdf import empirical_cdf, interpolate_cdf, percentile

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_empirical_cdf_simple():
    xs, fs = empirical_cdf([3.0, 1.0, 2.0])
    assert xs == [1.0, 2.0, 3.0]
    assert fs == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]


def test_empirical_cdf_empty():
    assert empirical_cdf([]) == ([], [])


@given(values=st.lists(finite_floats, min_size=1, max_size=50))
def test_empirical_cdf_monotone_and_bounded(values):
    xs, fs = empirical_cdf(values)
    assert xs == sorted(xs)
    assert all(0 < f <= 1.0 + 1e-12 for f in fs)
    assert fs == sorted(fs)
    assert fs[-1] == pytest.approx(1.0)


def test_percentile_median():
    assert percentile([1.0, 2.0, 3.0], 0.5) == pytest.approx(2.0)


def test_percentile_bounds():
    values = [5.0, 1.0, 9.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 9.0


def test_percentile_empty_rejected():
    with pytest.raises(Exception):
        percentile([], 0.5)


def test_interpolate_cdf_values():
    values = [1.0, 2.0, 3.0, 4.0]
    assert interpolate_cdf(values, [0.5, 2.0, 2.5, 10.0]) == [
        0.0,
        pytest.approx(0.5),
        pytest.approx(0.5),
        pytest.approx(1.0),
    ]


def test_interpolate_cdf_empty_sample_is_zero():
    assert interpolate_cdf([], [1.0, 2.0]) == [0.0, 0.0]


@given(
    values=st.lists(finite_floats, min_size=1, max_size=30),
    points=st.lists(finite_floats, min_size=1, max_size=10),
)
def test_interpolate_cdf_monotone_in_points(values, points):
    ordered = sorted(points)
    result = interpolate_cdf(values, ordered)
    assert result == sorted(result)
    assert all(0.0 <= r <= 1.0 for r in result)

"""Unit tests for the delivery collector."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.util.errors import SimulationError


def test_expect_registers_pairs():
    collector = MetricsCollector()
    collector.expect(1, topic=0, publish_time=0.0, deadlines={2: 0.1, 3: 0.2})
    assert collector.messages_published == 1
    assert collector.expected_deliveries == 2


def test_expect_without_subscribers_rejected():
    collector = MetricsCollector()
    with pytest.raises(SimulationError):
        collector.expect(1, 0, 0.0, {})


def test_duplicate_expectation_rejected():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1})
    with pytest.raises(SimulationError):
        collector.expect(1, 0, 0.0, {2: 0.1})


def test_first_delivery_recorded():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1})
    assert collector.record_delivery(1, 2, 0.05) is True
    outcome = collector.outcome(1, 2)
    assert outcome.delivered
    assert outcome.delay == pytest.approx(0.05)
    assert outcome.on_time


def test_later_copies_counted_as_duplicates():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1})
    collector.record_delivery(1, 2, 0.05)
    assert collector.record_delivery(1, 2, 0.08) is False
    assert collector.outcome(1, 2).duplicates == 1
    assert collector.outcome(1, 2).delay == pytest.approx(0.05)
    assert collector.duplicate_count() == 1


def test_unknown_delivery_ignored():
    collector = MetricsCollector()
    assert collector.record_delivery(99, 2, 0.05) is False


def test_late_delivery_not_on_time():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1})
    collector.record_delivery(1, 2, 0.15)
    outcome = collector.outcome(1, 2)
    assert outcome.delivered and not outcome.on_time


def test_deadline_boundary_is_on_time():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1})
    collector.record_delivery(1, 2, 0.1)
    assert collector.outcome(1, 2).on_time


def test_give_up_marks_only_undelivered():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1, 3: 0.1})
    collector.record_delivery(1, 2, 0.05)
    collector.record_give_up(1, 2)
    collector.record_give_up(1, 3)
    assert not collector.outcome(1, 2).gave_up
    assert collector.outcome(1, 3).gave_up


def test_counts():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1, 3: 0.1})
    collector.expect(2, 0, 1.0, {2: 0.1})
    collector.record_delivery(1, 2, 0.05)
    collector.record_delivery(1, 3, 0.25)
    assert collector.delivered_count() == 2
    assert collector.on_time_count() == 1


def test_late_normalized_delays():
    collector = MetricsCollector()
    collector.expect(1, 0, 0.0, {2: 0.1, 3: 0.1})
    collector.record_delivery(1, 2, 0.05)   # on time: excluded
    collector.record_delivery(1, 3, 0.15)   # late: 1.5x the requirement
    assert collector.late_normalized_delays() == [pytest.approx(1.5)]


def test_delays_list():
    collector = MetricsCollector()
    collector.expect(1, 0, 1.0, {2: 0.1})
    collector.record_delivery(1, 2, 1.07)
    assert collector.delays() == [pytest.approx(0.07)]


def test_publish_time_offsets_delay():
    collector = MetricsCollector()
    collector.expect(5, 0, 10.0, {2: 0.1})
    collector.record_delivery(5, 2, 10.05)
    assert collector.outcome(5, 2).delay == pytest.approx(0.05)
    assert collector.outcome(5, 2).on_time

"""Unit tests for run summaries and cross-repetition averaging."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import mean_summaries, summarize


def make_collector(deliveries):
    """deliveries: list of (msg, sub, publish, deadline, delivered_at|None)."""
    collector = MetricsCollector()
    seen = set()
    for msg, sub, publish, deadline, _ in deliveries:
        if msg not in seen:
            deadlines = {
                s: dl for m, s, _, dl, _ in deliveries if m == msg
            }
            collector.expect(msg, 0, publish, deadlines)
            seen.add(msg)
    for msg, sub, _, _, arrived in deliveries:
        if arrived is not None:
            collector.record_delivery(msg, sub, arrived)
    return collector


def test_ratios():
    collector = make_collector(
        [
            (1, 2, 0.0, 0.1, 0.05),   # on time
            (1, 3, 0.0, 0.1, 0.20),   # late
            (2, 2, 1.0, 0.1, None),   # lost
            (2, 3, 1.0, 0.1, 1.05),   # on time
        ]
    )
    summary = summarize(collector, data_transmissions=8, strategy="X")
    assert summary.expected_deliveries == 4
    assert summary.delivery_ratio == pytest.approx(0.75)
    assert summary.qos_delivery_ratio == pytest.approx(0.5)
    assert summary.packets_per_subscriber == pytest.approx(2.0)
    assert summary.strategy == "X"


def test_empty_collector():
    summary = summarize(MetricsCollector(), data_transmissions=0)
    assert summary.delivery_ratio == 0.0
    assert summary.qos_delivery_ratio == 0.0
    assert summary.packets_per_subscriber == 0.0
    assert summary.mean_delay is None


def test_delay_statistics():
    collector = make_collector(
        [
            (1, 2, 0.0, 1.0, 0.1),
            (2, 2, 0.0, 1.0, 0.3),
        ]
    )
    summary = summarize(collector, data_transmissions=2)
    assert summary.mean_delay == pytest.approx(0.2)
    assert summary.p95_delay == pytest.approx(0.29, abs=0.02)


def test_late_normalized_passthrough():
    collector = make_collector([(1, 2, 0.0, 0.1, 0.15)])
    summary = summarize(collector, data_transmissions=1)
    assert summary.late_normalized_delays == [pytest.approx(1.5)]


def test_as_dict_round_trip():
    collector = make_collector([(1, 2, 0.0, 0.1, 0.05)])
    summary = summarize(collector, data_transmissions=3, strategy="DCRD")
    data = summary.as_dict()
    assert data["strategy"] == "DCRD"
    assert data["data_transmissions"] == 3


class TestMeanSummaries:
    def test_ratios_averaged_counters_summed(self):
        a = summarize(make_collector([(1, 2, 0.0, 0.1, 0.05)]), 2, "X")
        b = summarize(make_collector([(1, 2, 0.0, 0.1, None)]), 4, "X")
        merged = mean_summaries([a, b])
        assert merged.delivery_ratio == pytest.approx(0.5)
        assert merged.expected_deliveries == 2
        assert merged.data_transmissions == 6

    def test_single_summary_identity(self):
        a = summarize(make_collector([(1, 2, 0.0, 0.1, 0.05)]), 2, "X")
        merged = mean_summaries([a])
        assert merged.delivery_ratio == a.delivery_ratio

    def test_late_delays_concatenated(self):
        a = summarize(make_collector([(1, 2, 0.0, 0.1, 0.15)]), 1, "X")
        b = summarize(make_collector([(1, 2, 0.0, 0.1, 0.30)]), 1, "X")
        merged = mean_summaries([a, b])
        assert sorted(merged.late_normalized_delays) == [
            pytest.approx(1.5),
            pytest.approx(3.0),
        ]

    def test_mixed_strategies_rejected(self):
        a = summarize(MetricsCollector(), 0, "X")
        b = summarize(MetricsCollector(), 0, "Y")
        with pytest.raises(ValueError):
            mean_summaries([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_summaries([])

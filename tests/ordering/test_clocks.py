"""Hypothesis property suite for the vector-clock algebra.

The causal pipeline's correctness rests on the merge/compare laws of
:mod:`repro.ordering.clocks`; checking them as algebraic properties over
arbitrary dynamic clocks (absent entries read as zero) covers the churn
cases — missing streams, late joiners — that example-based tests miss.
"""

from hypothesis import given, strategies as st

from repro.ordering.clocks import (
    AFTER,
    BEFORE,
    CONCURRENT,
    EQUAL,
    vc_compare,
    vc_get,
    vc_increment,
    vc_leq,
    vc_merge,
    vc_restrict,
)

streams = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
)

clocks = st.dictionaries(
    streams, st.integers(min_value=1, max_value=50), max_size=8
)


@given(left=clocks, right=clocks)
def test_merge_is_an_upper_bound(left, right):
    merged = vc_merge(left, right)
    assert vc_leq(left, merged)
    assert vc_leq(right, merged)


@given(left=clocks, right=clocks)
def test_merge_is_the_least_upper_bound(left, right):
    merged = vc_merge(left, right)
    for stream in set(left) | set(right):
        assert vc_get(merged, stream) == max(
            vc_get(left, stream), vc_get(right, stream)
        )


@given(left=clocks, right=clocks)
def test_merge_is_commutative(left, right):
    assert vc_merge(left, right) == vc_merge(right, left)


@given(a=clocks, b=clocks, c=clocks)
def test_merge_is_associative(a, b, c):
    assert vc_merge(vc_merge(a, b), c) == vc_merge(a, vc_merge(b, c))


@given(clock=clocks)
def test_merge_is_idempotent(clock):
    assert vc_merge(clock, clock) == vc_merge(clock)


@given(clock=clocks, stream=streams)
def test_increment_strictly_advances_only_its_stream(clock, stream):
    advanced = vc_increment(clock, stream)
    assert advanced is not clock  # pure: the input is untouched
    assert vc_get(advanced, stream) == vc_get(clock, stream) + 1
    for other in set(clock) - {stream}:
        assert vc_get(advanced, other) == vc_get(clock, other)
    assert vc_compare(clock, advanced) in (BEFORE, EQUAL) and vc_leq(
        clock, advanced
    )


@given(left=clocks, right=clocks)
def test_compare_is_antisymmetric(left, right):
    relation = vc_compare(left, right)
    reverse = vc_compare(right, left)
    expected = {
        BEFORE: AFTER,
        AFTER: BEFORE,
        EQUAL: EQUAL,
        CONCURRENT: CONCURRENT,
    }[relation]
    assert reverse == expected


@given(left=clocks, right=clocks)
def test_compare_agrees_with_leq(left, right):
    relation = vc_compare(left, right)
    if relation in (BEFORE, EQUAL):
        assert vc_leq(left, right)
    if relation in (AFTER, EQUAL):
        assert vc_leq(right, left)
    if relation == CONCURRENT:
        assert not vc_leq(left, right) and not vc_leq(right, left)


@given(a=clocks, b=clocks, c=clocks)
def test_leq_is_transitive(a, b, c):
    if vc_leq(a, b) and vc_leq(b, c):
        assert vc_leq(a, c)


@given(clock=clocks)
def test_equal_means_pointwise_equal(clock):
    assert vc_compare(clock, dict(clock)) == EQUAL
    # Zero-count entries are equivalent to absence.
    padded = dict(clock)
    padded[(99, 99)] = 0
    assert vc_compare(clock, padded) == EQUAL


@given(clock=clocks, keep=st.sets(streams, max_size=4))
def test_restrict_projects_and_never_invents(clock, keep):
    projected = vc_restrict(clock, keep)
    assert set(projected) <= keep
    assert all(projected[s] == clock[s] for s in projected)
    assert vc_leq(projected, clock)
    assert vc_restrict(clock, None) == clock

"""Hypothesis liveness properties of the hold-back pipelines.

The guarantee-specific unit tests pin *safety* (never release early);
these properties pin *liveness* under churn: whatever subset of a
workload actually reaches a subscriber (joins mid-stream, loses
arbitrary messages to a churned-away publisher, sees any arrival
interleaving, carries any causal dependency graph), the pipeline must

* release every offered frame exactly once (no duplicate release), and
* end up empty after the stall watchdog plus the end-of-run flush
  (no permanent stall).
"""

import heapq
import itertools
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.ordering.plan import OrderingPlan
from repro.ordering.spec import LEVELS, parse_ordering


class FakeClock:
    def __init__(self):
        self._now = 0.0
        self._timers = []
        self._seq = itertools.count()

    def schedule(self, delay, callback, *args):
        assert delay >= 0.0
        heapq.heappush(
            self._timers,
            (self._now + delay, next(self._seq), callback, args),
        )

    def advance(self, until):
        while self._timers and self._timers[0][0] <= until:
            t, _, callback, args = heapq.heappop(self._timers)
            self._now = t
            callback(*args)
        self._now = until


class FakeBroker:
    def __init__(self, node, clock):
        self.node = node
        self._sim = clock
        self.delivered = []

    def deliver_frame(self, frame):
        self.delivered.append(frame.msg_id)
        return True


@st.composite
def churn_worlds(draw):
    """A workload, which of it survives churn, and its arrival order.

    ``deps[i]`` lists earlier messages the publisher of message *i* had
    delivered before publishing — the raw material of causal vector
    clocks. Messages missing from ``arrival`` model a churned-away
    publisher whose tail never reaches this subscriber; arrival being a
    suffix-biased subset models a subscriber that joined mid-stream.
    """
    num_streams = draw(st.integers(min_value=1, max_value=3))
    counts = [
        draw(st.integers(min_value=1, max_value=4)) for _ in range(num_streams)
    ]
    messages = [
        (origin, index)
        for origin in range(num_streams)
        for index in range(counts[origin])
    ]
    deps = []
    for i in range(len(messages)):
        if i == 0:
            deps.append([])
        else:
            deps.append(
                draw(
                    st.lists(
                        st.integers(min_value=0, max_value=i - 1),
                        unique=True,
                        max_size=3,
                    )
                )
            )
    arrival_set = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(messages) - 1),
            unique=True,
            min_size=1,
            max_size=len(messages),
        )
    )
    arrival = draw(st.permutations(arrival_set))
    return counts, messages, deps, list(arrival)


@pytest.mark.parametrize("level", LEVELS)
@settings(max_examples=60, deadline=None)
@given(world=churn_worlds())
def test_no_permanent_stall_and_no_duplicate_release(level, world):
    counts, messages, deps, arrival = world
    plan = OrderingPlan(
        parse_ordering(level), stall_timeout=1.0, total_hold=0.5
    )
    clock = FakeClock()
    broker = FakeBroker(99, clock)
    pipeline = plan.pipeline_for(broker)

    # Stamp the whole workload in publish order, threading the drawn
    # causal-delivery graph through the publishers' observed clocks.
    frames = []
    for msg_index, (origin, _) in enumerate(messages):
        for dep_index in deps[msg_index]:
            dep = frames[dep_index]
            plan.note_delivery(origin, dep, dep.order_tag)
        frame = SimpleNamespace(
            msg_id=msg_index + 1, topic=0, origin=origin, order_tag=None
        )
        frame.order_tag = plan.stamp(frame)
        frames.append(frame)

    offered = [frames[i] for i in arrival]
    for frame in offered:
        pipeline.offer(frame)
    # Far past any stall-watchdog chain, then the end-of-run drain.
    clock.advance(1000.0)
    pipeline.flush()

    expected = sorted(frame.msg_id for frame in offered)
    assert sorted(broker.delivered) == expected  # exactly-once, no loss
    assert len(broker.delivered) == len(set(broker.delivered))
    assert pipeline.held_count() == 0
    counters = plan.perf_counters()
    assert counters["ordering.releases"] == float(len(offered))
    assert counters["ordering.held_at_end"] == 0.0


@pytest.mark.parametrize("level", LEVELS)
@settings(max_examples=30, deadline=None)
@given(world=churn_worlds())
def test_join_leave_rejoin_subscriber_still_drains(level, world):
    """A second pipeline that joins after the stream started (fresh
    baselines mid-history) must drain just like the first."""
    counts, messages, deps, arrival = world
    plan = OrderingPlan(
        parse_ordering(level), stall_timeout=1.0, total_hold=0.5
    )
    clock = FakeClock()
    early = FakeBroker(1, clock)
    late = FakeBroker(2, clock)
    early_pipe = plan.pipeline_for(early)

    frames = []
    for msg_index, (origin, _) in enumerate(messages):
        for dep_index in deps[msg_index]:
            dep = frames[dep_index]
            plan.note_delivery(origin, dep, dep.order_tag)
        frame = SimpleNamespace(
            msg_id=msg_index + 1, topic=0, origin=origin, order_tag=None
        )
        frame.order_tag = plan.stamp(frame)
        frames.append(frame)

    offered = [frames[i] for i in arrival]
    half = len(offered) // 2
    for frame in offered[:half]:
        early_pipe.offer(frame)
    # The late subscriber joins now: it only ever sees the tail.
    late_pipe = plan.pipeline_for(late)
    for frame in offered[half:]:
        early_pipe.offer(frame)
        late_pipe.offer(frame)
    clock.advance(1000.0)
    plan.flush()

    assert sorted(early.delivered) == sorted(f.msg_id for f in offered)
    assert sorted(late.delivered) == sorted(f.msg_id for f in offered[half:])
    assert len(late.delivered) == len(set(late.delivered))
    assert plan.held_count() == 0

"""Mutation smoke: break a hold-back release, the order checks must bite.

Same pattern as :mod:`tests.integration.test_sanitizer_mutations`: a
sanitizer invariant that never fires is indistinguishable from one that
checks nothing. Here the two ordering mutations corrupt the pipeline
release stream in sanitized runs:

* ``MUTATE_MISSORT_ORDER_RELEASE`` swaps consecutive ``ready`` releases
  at every pipeline — a classic hold-back drain bug — and each guarantee
  must catch it as *its own* invariant (fifo gap, causal precedence,
  total-order inversion);
* ``MUTATE_DROP_ORDER_RELEASE`` swallows one mid-stream ``ready``
  release at a single node — the guarantee-specific checks must notice
  the hole in the stream (fifo/causal), and for ``total`` (where every
  frame ages in the hold-back buffer first) the end-of-run hold/release
  pairing must flag the swallowed delivery as a hold leak.

With the sanitizer *off*, both flags must be completely inert: they
resolve through sanitizer-gated helpers in :mod:`repro.sanity`, so
plain runs stay bit-identical no matter what a test left behind.
"""

import pytest

from repro import sanity
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.ordering.spec import LEVELS
from repro.sanity import InvariantViolation

CONFIG = ExperimentConfig(
    topology_kind="regular",
    degree=5,
    num_nodes=16,
    num_topics=3,
    failure_probability=0.04,
    loss_rate=0.01,
    m=2,
    duration=6.0,
    drain=4.0,
    sanitize=True,
)

MISSORT_KIND = {
    "fifo": sanity.ORDER_FIFO_GAP,
    "causal": sanity.ORDER_CAUSAL_PRECEDENCE,
    "total": sanity.ORDER_TOTAL_INVERSION,
}

DROP_KIND = {
    "fifo": sanity.ORDER_FIFO_GAP,
    "causal": sanity.ORDER_CAUSAL_PRECEDENCE,
    "total": sanity.ORDER_HOLD_LEAK,
}


@pytest.mark.parametrize("level", LEVELS)
def test_missorted_release_fires_the_matching_invariant(monkeypatch, level):
    monkeypatch.setattr(sanity, "MUTATE_MISSORT_ORDER_RELEASE", True)
    config = CONFIG.with_updates(ordering=level)
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(config, "DCRD", seed=3)
    assert excinfo.value.kind == MISSORT_KIND[level]
    assert MISSORT_KIND[level] in excinfo.value.report()


@pytest.mark.parametrize("level", LEVELS)
def test_dropped_release_fires_the_matching_invariant(monkeypatch, level):
    monkeypatch.setattr(sanity, "MUTATE_DROP_ORDER_RELEASE", True)
    config = CONFIG.with_updates(ordering=level)
    with pytest.raises(InvariantViolation) as excinfo:
        run_single(config, "DCRD", seed=3)
    assert excinfo.value.kind == DROP_KIND[level]


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize(
    "flag", ["MUTATE_MISSORT_ORDER_RELEASE", "MUTATE_DROP_ORDER_RELEASE"]
)
def test_mutations_inert_without_sanitizer(monkeypatch, level, flag):
    """Unsanitized ordered runs are bit-identical with the flags up."""
    plain = CONFIG.with_updates(sanitize=False, ordering=level)
    baseline = run_single(plain, "DCRD", seed=3).as_dict()
    monkeypatch.setattr(sanity, flag, True)
    mutated = run_single(plain, "DCRD", seed=3).as_dict()
    assert mutated == baseline

"""Unit tests of the three hold-back pipelines over a fake clock.

Each pipeline is driven directly — fake broker, fake deterministic
clock, hand-stamped frames — so every branch of the deliverability
rules (baseline adoption, gaps, stall watchdogs, stragglers, flush,
duplicate handling) is pinned without a full simulation in the loop.
"""

import heapq
import itertools
from types import SimpleNamespace

import pytest

from repro import probes as _probes
from repro.ordering.pipeline import (
    CausalPipeline,
    DeliveryPipeline,
    FifoPipeline,
    PIPELINES,
    TotalOrderPipeline,
)
from repro.ordering.plan import OrderingPlan
from repro.ordering.spec import parse_ordering


class FakeClock:
    """Deterministic clock satisfying the pipeline's substrate contract."""

    def __init__(self):
        self._now = 0.0
        self._timers = []
        self._seq = itertools.count()

    def schedule(self, delay, callback, *args):
        assert delay >= 0.0  # the WallClock contract pipelines must honor
        heapq.heappush(
            self._timers,
            (self._now + delay, next(self._seq), callback, args),
        )

    def advance(self, until):
        while self._timers and self._timers[0][0] <= until:
            t, _, callback, args = heapq.heappop(self._timers)
            self._now = t
            callback(*args)
        self._now = until


class FakeBroker:
    """Terminal-stage double recording delivery order."""

    def __init__(self, node, clock):
        self.node = node
        self._sim = clock
        self.delivered = []

    def deliver_frame(self, frame):
        self.delivered.append(frame.msg_id)
        return True


class ReleaseRecorder:
    """Probe observer capturing the release stream with reasons."""

    def __init__(self):
        self.holds = []
        self.releases = []
        self.stalls = []

    def on_order_hold(self, t, node, frame, level):
        self.holds.append(frame.msg_id)

    def on_order_release(self, t, node, frame, level, reason, held_for):
        self.releases.append((frame.msg_id, reason, held_for))

    def on_order_stall(self, t, node, level, info):
        self.stalls.append(info["msg"])


def make_rig(level, spec_text=None, stall_timeout=1.0, total_hold=0.5, node=9):
    plan = OrderingPlan(
        parse_ordering(spec_text or level),
        stall_timeout=stall_timeout,
        total_hold=total_hold,
    )
    clock = FakeClock()
    broker = FakeBroker(node, clock)
    pipeline = plan.pipeline_for(broker)
    recorder = ReleaseRecorder()
    _probes.attach(recorder)
    return plan, clock, broker, pipeline, recorder


@pytest.fixture(autouse=True)
def _detach_recorders():
    yield
    for observer in _probes.observers():
        if isinstance(observer, ReleaseRecorder):
            _probes.detach(observer)


def publish(plan, msg_id, topic=0, origin=0):
    """A stamped frame, exactly as the publish-side stamper would make it."""
    frame = SimpleNamespace(msg_id=msg_id, topic=topic, origin=origin, order_tag=None)
    frame.order_tag = plan.stamp(frame)
    return frame


# ---------------------------------------------------------------------------
# Base / shared machinery
# ---------------------------------------------------------------------------
def test_levels_registry_is_complete():
    assert set(PIPELINES) == {"fifo", "causal", "total"}
    assert PIPELINES["fifo"] is FifoPipeline
    assert PIPELINES["causal"] is CausalPipeline
    assert PIPELINES["total"] is TotalOrderPipeline


def test_untagged_and_uncovered_frames_bypass_the_guarantee():
    plan, _, broker, pipeline, recorder = make_rig("fifo", "fifo:5")
    untagged = SimpleNamespace(msg_id=1, topic=5, origin=0, order_tag=None)
    pipeline.offer(untagged)
    uncovered = publish(plan, 2, topic=3)  # stamp() declines: topic not covered
    assert uncovered.order_tag is None
    pipeline.offer(uncovered)
    assert broker.delivered == [1, 2]
    assert recorder.releases == []  # bypass, not a release


def test_duplicate_of_held_frame_delivers_right_after_the_primary():
    plan, _, broker, pipeline, _ = make_rig("fifo")
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])  # held: waiting for seq 2
    dup = SimpleNamespace(
        msg_id=3, topic=0, origin=0, order_tag=frames[2].order_tag
    )
    pipeline.offer(dup)
    assert broker.delivered == [1]
    pipeline.offer(frames[1])
    assert broker.delivered == [1, 2, 3, 3]


def test_duplicate_of_released_frame_passes_straight_through():
    plan, _, broker, pipeline, recorder = make_rig("fifo")
    frame = publish(plan, 1)
    pipeline.offer(frame)
    pipeline.offer(
        SimpleNamespace(msg_id=1, topic=0, origin=0, order_tag=frame.order_tag)
    )
    assert broker.delivered == [1, 1]
    assert len(recorder.releases) == 1  # the dup is not a second release


def test_passthrough_base_releases_immediately():
    plan = OrderingPlan(parse_ordering("fifo"))
    clock = FakeClock()
    broker = FakeBroker(0, clock)
    pipeline = DeliveryPipeline(broker, plan)
    pipeline.offer(publish(plan, 1))
    assert broker.delivered == [1]
    assert pipeline.held_count() == 0


# ---------------------------------------------------------------------------
# FIFO
# ---------------------------------------------------------------------------
def test_fifo_reorders_a_gapped_stream():
    plan, _, broker, pipeline, recorder = make_rig("fifo")
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])  # gap: seq 3 before seq 2
    assert broker.delivered == [1]
    assert recorder.holds == [3]
    pipeline.offer(frames[1])
    assert broker.delivered == [1, 2, 3]
    assert [r for _, r, _ in recorder.releases] == ["ready"] * 3
    assert pipeline.held_count() == 0


def test_fifo_streams_are_independent():
    plan, _, broker, pipeline, _ = make_rig("fifo")
    s1 = [publish(plan, i, origin=1) for i in (1, 2, 3)]
    s2 = publish(plan, 20, origin=2)
    pipeline.offer(s1[0])
    pipeline.offer(s1[2])  # held: stream-1 gap
    pipeline.offer(s2)  # stream 2 is unaffected by stream 1's gap
    assert broker.delivered == [1, 20]
    pipeline.offer(s1[1])
    assert broker.delivered == [1, 20, 2, 3]


def test_fifo_first_seen_sequence_adopts_baseline():
    plan, _, broker, pipeline, recorder = make_rig("fifo")
    for i in (1, 2, 3):
        publish(plan, i)  # stream history this node never saw
    late = publish(plan, 4)
    pipeline.offer(late)  # first contact at seq 4: no wait for 1..3
    assert broker.delivered == [4]
    assert recorder.releases == [(4, "ready", 0.0)]


def test_fifo_stall_watchdog_skips_the_gap():
    plan, clock, broker, pipeline, recorder = make_rig("fifo", stall_timeout=1.0)
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])  # seq 3 waits for lost seq 2
    clock.advance(0.9)
    assert broker.delivered == [1]
    clock.advance(1.1)
    assert broker.delivered == [1, 3]
    assert (3, "stall", pytest.approx(1.0)) in recorder.releases
    assert recorder.stalls == [3]
    # The skipped-over straggler arrives afterwards: stall, not ready.
    pipeline.offer(frames[1])
    assert broker.delivered == [1, 3, 2]
    assert recorder.releases[-1][:2] == (2, "stall")


def test_fifo_stall_release_resumes_ready_flow():
    plan, clock, broker, pipeline, recorder = make_rig("fifo", stall_timeout=1.0)
    frames = [publish(plan, i) for i in (1, 2, 3, 4)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])
    pipeline.offer(frames[3])
    clock.advance(2.0)  # watchdog: 3 stalls past the gap, 4 drains ready
    assert broker.delivered == [1, 3, 4]
    reasons = {msg: reason for msg, reason, _ in recorder.releases}
    assert reasons == {1: "ready", 3: "stall", 4: "ready"}


def test_fifo_flush_drains_everything_held():
    plan, _, broker, pipeline, recorder = make_rig("fifo")
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])
    pipeline.flush()
    assert broker.delivered == [1, 3]
    assert recorder.releases[-1][:2] == (3, "flush")
    assert pipeline.held_count() == 0


def test_fifo_closed_pipeline_ignores_late_timers():
    plan, clock, broker, pipeline, _ = make_rig("fifo", stall_timeout=1.0)
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])  # held behind the seq-2 gap, watchdog armed
    pipeline.close()
    clock.advance(5.0)  # the armed watchdog fires into a closed pipeline
    assert broker.delivered == [1]


# ---------------------------------------------------------------------------
# Causal
# ---------------------------------------------------------------------------
def test_causal_holds_until_dependency_delivered():
    plan, _, broker, pipeline, recorder = make_rig("causal")
    a1 = publish(plan, 1, origin=1)
    pipeline.offer(a1)  # this node now knows stream (0, 1) at seq 1
    a2 = publish(plan, 2, origin=1)
    # Node 2 saw a2 before publishing b1 -> b1 depends on (0, 1): 2.
    plan.note_delivery(2, a2, a2.order_tag)
    b1 = publish(plan, 3, origin=2)
    assert b1.order_tag.vc[(0, 1)] == 2
    pipeline.offer(b1)
    assert broker.delivered == [1]  # b1 held: dep on known stream unmet
    assert recorder.holds == [3]
    pipeline.offer(a2)
    assert broker.delivered == [1, 2, 3]  # cascade released b1


def test_causal_unknown_stream_dependency_is_waived():
    plan, _, broker, pipeline, _ = make_rig("causal")
    a1 = publish(plan, 1, origin=1)
    plan.note_delivery(2, a1, a1.order_tag)
    b1 = publish(plan, 2, origin=2)  # depends on stream (0, 1)
    pipeline.offer(b1)  # ...which this node has never seen: waived
    assert broker.delivered == [2]


def test_causal_own_stream_gap_holds():
    plan, _, broker, pipeline, _ = make_rig("causal")
    frames = [publish(plan, i, origin=1) for i in (1, 2, 3)]
    pipeline.offer(frames[0])
    pipeline.offer(frames[2])  # own-stream gap (seq 3 after seq 1)
    assert broker.delivered == [1]
    pipeline.offer(frames[1])
    assert broker.delivered == [1, 2, 3]


def test_causal_duplicate_sequence_is_a_stall_release():
    plan, _, broker, pipeline, recorder = make_rig("causal")
    a1 = publish(plan, 1, origin=1)
    pipeline.offer(a1)
    replay = SimpleNamespace(msg_id=7, topic=0, origin=1, order_tag=a1.order_tag)
    pipeline.offer(replay)  # seq <= delivered: late, out of the checked flow
    assert broker.delivered == [1, 7]
    assert recorder.releases[-1][:2] == (7, "stall")


def test_causal_stall_watchdog_forces_oldest_and_cascades():
    plan, clock, broker, pipeline, recorder = make_rig("causal", stall_timeout=1.0)
    a1 = publish(plan, 1, origin=1)
    publish(plan, 2, origin=1)  # a2 is lost to this node
    a3 = publish(plan, 3, origin=1)
    a4 = publish(plan, 4, origin=1)
    pipeline.offer(a1)
    pipeline.offer(a3)
    pipeline.offer(a4)
    assert broker.delivered == [1]
    clock.advance(1.5)
    # a3 forced through as a stall; a4 is then next-in-sequence -> ready.
    assert broker.delivered == [1, 3, 4]
    reasons = {msg: reason for msg, reason, _ in recorder.releases}
    assert reasons == {1: "ready", 3: "stall", 4: "ready"}


def test_causal_flush_releases_in_hold_order():
    plan, _, broker, pipeline, recorder = make_rig("causal")
    a1 = publish(plan, 1, origin=1)
    publish(plan, 2, origin=1)  # lost: a3/a4 can never go ready
    a3 = publish(plan, 3, origin=1)
    a4 = publish(plan, 4, origin=1)
    pipeline.offer(a1)
    pipeline.offer(a4)
    pipeline.offer(a3)
    pipeline.flush()
    # Deterministic drain order: (held_since, msg_id), so equal hold
    # times tie-break on msg_id.
    assert broker.delivered == [1, 3, 4]
    assert [r for _, r, _ in recorder.releases] == ["ready", "flush", "flush"]
    assert pipeline.held_count() == 0


# ---------------------------------------------------------------------------
# Total
# ---------------------------------------------------------------------------
def test_total_releases_in_key_order_after_the_window():
    plan, clock, broker, pipeline, recorder = make_rig("total", total_hold=0.5)
    m_b = publish(plan, 10, origin=2)  # key (1, 2, 1)
    m_a = publish(plan, 11, origin=1)  # key (1, 1, 1)
    pipeline.offer(m_b)  # arrival order is b then a...
    pipeline.offer(m_a)
    assert broker.delivered == []
    clock.advance(1.0)
    assert broker.delivered == [11, 10]  # ...release order is the key order
    assert [r for _, r, _ in recorder.releases] == ["ready", "ready"]


def test_total_same_subscriber_set_agrees_across_nodes():
    plan = OrderingPlan(parse_ordering("total"), total_hold=0.5)
    clock = FakeClock()
    brokers = [FakeBroker(node, clock) for node in (4, 5)]
    pipelines = [plan.pipeline_for(broker) for broker in brokers]
    frames = [publish(plan, 10 + i, origin=i % 3) for i in range(6)]
    for frame in frames:  # node 4 sees publish order
        pipelines[0].offer(frame)
    for frame in reversed(frames):  # node 5 sees it fully reversed
        pipelines[1].offer(frame)
    clock.advance(2.0)
    assert brokers[0].delivered == brokers[1].delivered
    assert set(brokers[0].delivered) == {10, 11, 12, 13, 14, 15}


def test_total_straggler_past_the_watermark_stalls():
    plan, clock, broker, pipeline, recorder = make_rig("total", total_hold=0.5)
    early = publish(plan, 1, origin=1)
    late = publish(plan, 2, origin=1)
    pipeline.offer(late)
    clock.advance(1.0)  # late released: watermark is now its key
    assert broker.delivered == [2]
    pipeline.offer(early)  # smaller key than the watermark
    assert broker.delivered == [2, 1]
    assert recorder.releases[-1][:2] == (1, "stall")


def test_total_flush_drains_in_key_order():
    plan, _, broker, pipeline, _ = make_rig("total", total_hold=10.0)
    m1 = publish(plan, 1, origin=2)
    m2 = publish(plan, 2, origin=1)
    pipeline.offer(m1)
    pipeline.offer(m2)
    pipeline.flush()
    assert broker.delivered == [2, 1]  # (1,1,1) before (1,2,1)
    assert pipeline.held_count() == 0


# ---------------------------------------------------------------------------
# Plan-level surface
# ---------------------------------------------------------------------------
def test_plan_counters_aggregate_across_pipelines():
    plan = OrderingPlan(parse_ordering("fifo"), stall_timeout=1.0)
    clock = FakeClock()
    brokers = [FakeBroker(node, clock) for node in (1, 2)]
    pipes = [plan.pipeline_for(b) for b in brokers]
    frames = [publish(plan, i) for i in (1, 2, 3)]
    pipes[0].offer(frames[0])
    pipes[1].offer(frames[0])
    pipes[1].offer(frames[2])  # held on broker 2 (gap behind seq 2)
    counters = plan.perf_counters()
    assert counters["ordering.offers"] == 3.0
    assert counters["ordering.releases"] == 2.0
    assert counters["ordering.held_at_end"] == 1.0
    assert plan.held_count() == 1
    plan.flush()
    assert plan.held_count() == 0


def test_plan_stamp_is_idempotent_per_message():
    plan = OrderingPlan(parse_ordering("fifo"))
    frame = SimpleNamespace(msg_id=1, topic=0, origin=0, order_tag=None)
    first = plan.stamp(frame)
    again = plan.stamp(frame)  # custody redelivery re-freshens the message
    assert first is again
    assert plan.stamp(
        SimpleNamespace(msg_id=2, topic=0, origin=0, order_tag=None)
    ).seq == first.seq + 1

"""Spec parsing and config/CLI validation of the ordering directive."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.ordering import LEVELS, OrderingSpec, parse_ordering
from repro.util.errors import ConfigurationError


# ---------------------------------------------------------------------------
# parse_ordering
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("level", LEVELS)
def test_bare_level_covers_every_topic(level):
    spec = parse_ordering(level)
    assert spec.level == level
    assert spec.topics is None
    assert spec.covers(0) and spec.covers(999)
    assert spec.describe() == level


def test_topic_list_restricts_coverage():
    spec = parse_ordering("fifo:2,5")
    assert spec.topics == frozenset({2, 5})
    assert spec.covers(2) and spec.covers(5)
    assert not spec.covers(0)
    assert spec.describe() == "fifo:2,5"


def test_whitespace_is_tolerated():
    assert parse_ordering("  causal : 1 , 3 ") == OrderingSpec(
        level="causal", topics=frozenset({1, 3})
    )


def test_unknown_level_names_the_valid_levels():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_ordering("lexicographic")
    message = str(excinfo.value)
    assert "lexicographic" in message
    for level in LEVELS:
        assert level in message


@pytest.mark.parametrize("text", ["", "   ", None, 7])
def test_non_string_or_empty_specs_are_rejected(text):
    with pytest.raises(ConfigurationError):
        parse_ordering(text)


@pytest.mark.parametrize("text", ["fifo:", "total:,", "causal:1,,2"])
def test_empty_topic_lists_are_rejected(text):
    with pytest.raises(ConfigurationError):
        parse_ordering(text)


def test_non_integer_topics_are_rejected():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_ordering("fifo:1,track-updates")
    assert "track-updates" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Eager validation through ExperimentConfig and the CLI
# ---------------------------------------------------------------------------
def test_config_accepts_valid_ordering():
    config = ExperimentConfig(ordering="causal:0")
    assert config.ordering == "causal:0"


def test_config_rejects_unknown_ordering_level_at_build_time():
    with pytest.raises(ConfigurationError) as excinfo:
        ExperimentConfig(ordering="alphabetical")
    message = str(excinfo.value)
    for level in LEVELS:
        assert level in message


def test_cli_threads_ordering_into_the_config():
    from repro.cli import _config_from, build_parser

    args = build_parser().parse_args(
        ["compare", "--ordering", "total:0", "--duration", "5"]
    )
    config = _config_from(args)
    assert config.ordering == "total:0"


def test_cli_rejects_unknown_ordering_level():
    from repro.cli import _config_from, build_parser

    args = build_parser().parse_args(["compare", "--ordering", "bogus"])
    with pytest.raises(ConfigurationError):
        _config_from(args)

"""Tests for the clustered WAN topology generator."""

import networkx as nx
import pytest

from repro.overlay.topology import canonical_edge, clustered
from repro.util.errors import ConfigurationError


def members(cluster, size):
    return set(range(cluster * size, (cluster + 1) * size))


def test_shape_and_connectivity(rng):
    topo = clustered(4, 5, rng)
    assert topo.num_nodes == 20
    assert nx.is_connected(topo.graph)


def test_full_mesh_inside_clusters(rng):
    topo = clustered(3, 4, rng)
    for cluster in range(3):
        nodes = sorted(members(cluster, 4))
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                assert topo.has_edge(u, v)


def test_intra_links_faster_than_trunks(rng):
    topo = clustered(
        4, 4, rng, intra_delay_range=(0.002, 0.010), inter_delay_range=(0.020, 0.080)
    )
    for u, v in topo.edges():
        same_cluster = u // 4 == v // 4
        delay = topo.delay(u, v)
        if same_cluster:
            assert 0.002 <= delay <= 0.010
        else:
            assert 0.020 <= delay <= 0.080


def test_intra_degree_bound(rng):
    topo = clustered(3, 8, rng, intra_degree=3, trunks_per_cluster=1)
    # Every broker has at least the ring's 2 intra links; chords raise the
    # minimum to the requested degree (trunk endpoints may exceed it).
    for node in topo.nodes:
        intra = [
            n for n in topo.neighbors(node) if n // 8 == node // 8
        ]
        assert len(intra) >= 2


def test_every_cluster_has_a_trunk(rng):
    topo = clustered(5, 3, rng, trunks_per_cluster=1)
    for cluster in range(5):
        nodes = members(cluster, 3)
        trunk_links = [
            (u, v)
            for u, v in topo.edges()
            if (u in nodes) != (v in nodes)
        ]
        assert trunk_links


def test_deterministic_per_rng_seed():
    import numpy as np

    a = clustered(3, 4, np.random.default_rng(5))
    b = clustered(3, 4, np.random.default_rng(5))
    assert a.edge_set() == b.edge_set()
    for edge in a.edges():
        assert a.delay(*edge) == b.delay(*edge)


def test_invalid_parameters_rejected(rng):
    with pytest.raises(ConfigurationError):
        clustered(1, 4, rng)
    with pytest.raises(ConfigurationError):
        clustered(3, 1, rng)
    with pytest.raises(ConfigurationError):
        clustered(3, 4, rng, trunks_per_cluster=0)


def test_dcrd_runs_on_clustered_overlay(rng):
    from repro.experiments.runner import build_environment
    from repro.experiments.config import ExperimentConfig
    from repro.pubsub.topics import generate_workload
    from repro.sim.random import RandomStreams

    topo = clustered(4, 5, rng, trunks_per_cluster=2)
    config = ExperimentConfig(num_nodes=20, duration=10.0, num_topics=4,
                              failure_probability=0.05)
    env = build_environment(config, "DCRD", seed=2, topology=topo)
    summary = env.execute()
    assert summary.delivery_ratio > 0.97

"""Tests for the EDF link queue discipline."""

import pytest

from repro.overlay.links import FrameKind, OverlayNetwork
from repro.pubsub.messages import PacketFrame
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError
from tests.conftest import make_topology


def frame_with_priority(priority, msg_id=1):
    return PacketFrame.fresh(
        msg_id=msg_id,
        topic=0,
        origin=0,
        publish_time=0.0,
        destinations=frozenset({1}),
        priority=priority,
    )


def make_network(discipline="edf", service_time=0.010):
    topo = make_topology([(0, 1, 0.010)])
    sim = Simulator()
    network = OverlayNetwork(
        sim,
        topo,
        RandomStreams(1),
        service_time=service_time,
        queue_discipline=discipline,
    )
    return sim, network


def test_urgent_frame_overtakes_queued_frames():
    sim, network = make_network()
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append((f.msg_id, sim.now)))
    # The first frame starts service immediately; while it serialises,
    # a low-priority and then a high-priority frame arrive.
    network.transmit(0, 1, frame_with_priority(5.0, msg_id=1), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(9.0, msg_id=2), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(1.0, msg_id=3), FrameKind.DATA)
    sim.run()
    order = [msg for msg, _ in arrivals]
    assert order == [1, 3, 2]  # in-service first, then by deadline


def test_equal_priorities_serve_fifo():
    sim, network = make_network()
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(f.msg_id))
    for msg_id in (1, 2, 3):
        network.transmit(0, 1, frame_with_priority(5.0, msg_id=msg_id), FrameKind.DATA)
    sim.run()
    assert arrivals == [1, 2, 3]


def test_service_and_propagation_times_accumulate():
    sim, network = make_network(service_time=0.010)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(sim.now))
    network.transmit(0, 1, frame_with_priority(1.0, msg_id=1), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(2.0, msg_id=2), FrameKind.DATA)
    sim.run()
    assert arrivals == [pytest.approx(0.020), pytest.approx(0.030)]


def test_server_idles_and_resumes():
    sim, network = make_network()
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(sim.now))
    network.transmit(0, 1, frame_with_priority(1.0, msg_id=1), FrameKind.DATA)
    sim.schedule(1.0, network.transmit, 0, 1, frame_with_priority(1.0, msg_id=2), FrameKind.DATA)
    sim.run()
    assert arrivals == [pytest.approx(0.020), pytest.approx(1.020)]


def test_acks_bypass_edf_queue():
    sim, network = make_network(service_time=0.050)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append((f, sim.now)))
    network.transmit(0, 1, frame_with_priority(1.0), FrameKind.DATA)
    network.transmit(0, 1, "ack", FrameKind.ACK)
    sim.run()
    assert ("ack", pytest.approx(0.010)) in [(f, pytest.approx(t)) for f, t in arrivals]


def test_backlog_accounts_for_queue():
    sim, network = make_network(service_time=0.010)
    network.attach(1, lambda s, f: None)
    network.transmit(0, 1, frame_with_priority(1.0, msg_id=1), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(2.0, msg_id=2), FrameKind.DATA)
    assert network.queueing_backlog(0, 1) >= 0.010


def test_unknown_discipline_rejected():
    with pytest.raises(SimulationError):
        make_network(discipline="lifo")


def test_priorityless_frames_fall_to_back():
    sim, network = make_network()
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(f.msg_id))
    network.transmit(0, 1, frame_with_priority(1.0, msg_id=1), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(float("inf"), msg_id=2), FrameKind.DATA)
    network.transmit(0, 1, frame_with_priority(3.0, msg_id=3), FrameKind.DATA)
    sim.run()
    assert arrivals == [1, 3, 2]

"""Unit tests for the transient failure schedules."""

import numpy as np
import pytest

from repro.overlay.failures import FailureSchedule, NodeFailureSchedule
from repro.overlay.topology import full_mesh
from repro.util.errors import ConfigurationError
from tests.conftest import make_topology


@pytest.fixture
def topo(rng):
    return full_mesh(10, rng)


class TestFailureSchedule:
    def test_pf_zero_never_fails(self, topo):
        schedule = FailureSchedule(topo, 0.0, seed=1)
        for epoch in range(50):
            assert schedule.failed_edges(epoch) == frozenset()

    def test_pf_one_fails_everything(self, topo):
        schedule = FailureSchedule(topo, 1.0, seed=1)
        assert schedule.failed_edges(3) == topo.edge_set()

    def test_same_seed_same_schedule(self, topo):
        a = FailureSchedule(topo, 0.3, seed=7)
        b = FailureSchedule(topo, 0.3, seed=7)
        for epoch in range(20):
            assert a.failed_edges(epoch) == b.failed_edges(epoch)

    def test_different_seeds_differ(self, topo):
        a = FailureSchedule(topo, 0.3, seed=7)
        b = FailureSchedule(topo, 0.3, seed=8)
        assert any(
            a.failed_edges(epoch) != b.failed_edges(epoch) for epoch in range(20)
        )

    def test_failure_fraction_approximates_pf(self, topo):
        pf = 0.1
        schedule = FailureSchedule(topo, pf, seed=3)
        total = sum(len(schedule.failed_edges(epoch)) for epoch in range(400))
        observed = total / (400 * topo.num_edges)
        assert observed == pytest.approx(pf, rel=0.15)

    def test_is_failed_respects_epoch_window(self, topo):
        schedule = FailureSchedule(topo, 0.5, seed=11)
        edge = next(iter(schedule.failed_edges(4)))
        assert schedule.is_failed(*edge, time=4.0)
        assert schedule.is_failed(*edge, time=4.999)
        # The adjacent epochs are drawn independently; query them through
        # the schedule to confirm the window boundaries are respected.
        assert schedule.is_failed(*edge, time=5.0) == (
            edge in schedule.failed_edges(5)
        )

    def test_is_failed_symmetric(self, topo):
        schedule = FailureSchedule(topo, 0.5, seed=11)
        edge = next(iter(schedule.failed_edges(0)))
        assert schedule.is_failed(edge[0], edge[1], 0.5)
        assert schedule.is_failed(edge[1], edge[0], 0.5)

    def test_custom_epoch_length(self, topo):
        schedule = FailureSchedule(topo, 0.5, seed=2, epoch=10.0)
        assert schedule.epoch_index(25.0) == 2
        assert schedule.epoch_index(9.99) == 0

    def test_invalid_probability_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            FailureSchedule(topo, 1.5, seed=1)

    def test_invalid_epoch_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            FailureSchedule(topo, 0.1, seed=1, epoch=0.0)

    def test_queries_are_cached_and_stable(self, topo):
        schedule = FailureSchedule(topo, 0.4, seed=5)
        first = schedule.failed_edges(9)
        second = schedule.failed_edges(9)
        assert first is second

    def test_long_run_failure_fraction(self, topo):
        assert FailureSchedule(topo, 0.07, seed=1).long_run_failure_fraction() == 0.07


class TestNodeFailureSchedule:
    def test_pf_zero_never_fails(self, topo):
        schedule = NodeFailureSchedule(topo, 0.0, seed=1)
        assert schedule.failed_nodes(10) == frozenset()

    def test_pf_one_fails_all_unprotected(self, topo):
        schedule = NodeFailureSchedule(
            topo, 1.0, seed=1, protected_nodes=frozenset({0, 1})
        )
        failed = schedule.failed_nodes(0)
        assert 0 not in failed and 1 not in failed
        assert failed == frozenset(range(2, topo.num_nodes))

    def test_deterministic_per_seed(self, topo):
        a = NodeFailureSchedule(topo, 0.3, seed=9)
        b = NodeFailureSchedule(topo, 0.3, seed=9)
        for epoch in range(10):
            assert a.failed_nodes(epoch) == b.failed_nodes(epoch)

    def test_is_failed_uses_epoch(self, topo):
        schedule = NodeFailureSchedule(topo, 0.5, seed=4)
        failed = schedule.failed_nodes(2)
        for node in failed:
            assert schedule.is_failed(node, 2.5)

    def test_node_and_link_schedules_are_independent(self, topo):
        links = FailureSchedule(topo, 0.5, seed=6)
        nodes = NodeFailureSchedule(topo, 0.5, seed=6)
        # Different spawn keys: the two draws must not be identical signals.
        link_pattern = [len(links.failed_edges(e)) for e in range(20)]
        node_pattern = [len(nodes.failed_nodes(e)) for e in range(20)]
        assert link_pattern != node_pattern

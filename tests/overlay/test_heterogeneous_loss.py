"""Tests for per-link loss rates in the network and monitor."""

import pytest

from repro.overlay.links import FrameKind, OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError
from tests.conftest import make_topology


def make_network(link_loss_rates=None, loss_rate=0.0, seed=3):
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.010)])
    sim = Simulator()
    streams = RandomStreams(seed)
    network = OverlayNetwork(
        sim,
        topo,
        streams,
        loss_rate=loss_rate,
        link_loss_rates=link_loss_rates,
    )
    return topo, sim, streams, network


def test_per_link_rate_overrides_uniform():
    topo, sim, _, network = make_network(
        link_loss_rates={(0, 1): 1.0}, loss_rate=0.0
    )
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.attach(2, lambda s, f: received.append(f))
    network.transmit(0, 1, "dead", FrameKind.DATA)
    network.transmit(1, 2, "clean", FrameKind.DATA)
    sim.run()
    assert received == ["clean"]


def test_missing_links_fall_back_to_uniform():
    topo, sim, _, network = make_network(
        link_loss_rates={(0, 1): 0.0}, loss_rate=1.0
    )
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.attach(2, lambda s, f: received.append(f))
    network.transmit(0, 1, "clean", FrameKind.DATA)
    network.transmit(1, 2, "dead", FrameKind.DATA)
    sim.run()
    assert received == ["clean"]


def test_link_success_probability_query():
    topo, sim, _, network = make_network(
        link_loss_rates={(0, 1): 0.25}, loss_rate=0.1
    )
    assert network.link_success_probability(0, 1) == pytest.approx(0.75)
    assert network.link_success_probability(1, 0) == pytest.approx(0.75)
    assert network.link_success_probability(1, 2) == pytest.approx(0.9)


def test_invalid_link_rate_rejected():
    with pytest.raises(ConfigurationError):
        make_network(link_loss_rates={(0, 1): 1.5})


def test_monitor_sees_per_link_gammas():
    topo, sim, streams, network = make_network(
        link_loss_rates={(0, 1): 0.3}, loss_rate=0.05
    )
    monitor = LinkMonitor(topo, network, streams)
    assert monitor.estimate(0, 1).gamma == pytest.approx(0.7)
    assert monitor.estimate(1, 2).gamma == pytest.approx(0.95)


def test_runner_draws_link_rates_from_range():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_environment

    config = ExperimentConfig(
        num_nodes=8, duration=5.0, loss_rate_range=(0.1, 0.3), num_topics=2
    )
    env = build_environment(config, "DCRD", seed=1)
    rates = env.ctx.network.link_loss_rates
    assert len(rates) == env.ctx.topology.num_edges
    assert all(0.1 <= rate <= 0.3 for rate in rates.values())
    # Deterministic per seed.
    env2 = build_environment(config, "DCRD", seed=1)
    assert env2.ctx.network.link_loss_rates == rates

"""Unit tests for the overlay data plane."""

import pytest

from repro.overlay.failures import NodeFailureSchedule
from repro.overlay.links import FrameKind, OverlayNetwork
from repro.overlay.topology import full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError
from tests.conftest import ScriptedFailures, make_topology


def make_network(topology, loss_rate=0.0, failures=None, node_failures=None, seed=1):
    sim = Simulator()
    network = OverlayNetwork(
        sim,
        topology,
        RandomStreams(seed),
        loss_rate=loss_rate,
        failures=failures,
        node_failures=node_failures,
        trace=True,
    )
    return sim, network


def test_frame_arrives_after_link_delay():
    topo = make_topology([(0, 1, 0.025)])
    sim, network = make_network(topo)
    received = []
    network.attach(1, lambda sender, frame: received.append((sender, frame, sim.now)))
    network.transmit(0, 1, "hello", FrameKind.DATA)
    sim.run()
    assert received == [(0, "hello", 0.025)]


def test_transmit_to_non_neighbor_rejected():
    topo = make_topology([(0, 1, 0.01), (1, 2, 0.01)])
    sim, network = make_network(topo)
    with pytest.raises(SimulationError):
        network.transmit(0, 2, "x", FrameKind.DATA)


def test_loss_rate_one_drops_everything():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo, loss_rate=1.0)
    received = []
    network.attach(1, lambda s, f: received.append(f))
    for _ in range(20):
        network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    assert received == []
    assert network.stats.lost_random[FrameKind.DATA] == 20


def test_loss_rate_statistics():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo, loss_rate=0.3, seed=5)
    network.attach(1, lambda s, f: None)
    for _ in range(2000):
        network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    fraction = network.stats.loss_fraction(FrameKind.DATA)
    assert fraction == pytest.approx(0.3, abs=0.05)


def test_failed_link_drops_frames_during_window():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
    sim, network = make_network(topo, failures=failures)
    received = []
    network.attach(1, lambda s, f: received.append((f, sim.now)))
    network.transmit(0, 1, "lost", FrameKind.DATA)
    sim.schedule(1.5, network.transmit, 0, 1, "ok", FrameKind.DATA)
    sim.run()
    assert received == [("ok", pytest.approx(1.51))]
    assert network.stats.lost_failure[FrameKind.DATA] == 1


def test_ack_frames_subject_to_same_hazards():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
    sim, network = make_network(topo, failures=failures)
    network.attach(0, lambda s, f: None)
    network.transmit(1, 0, "ack", FrameKind.ACK)
    sim.run()
    assert network.stats.lost_failure[FrameKind.ACK] == 1


def test_reliable_flag_skips_random_loss_only():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo, loss_rate=1.0)
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.transmit(0, 1, "x", FrameKind.DATA, reliable=True)
    sim.run()
    assert received == ["x"]


def test_reliable_flag_does_not_bypass_failures():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
    sim, network = make_network(topo, failures=failures)
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.transmit(0, 1, "x", FrameKind.DATA, reliable=True)
    sim.run()
    assert received == []


def test_node_failure_drops_frames_from_down_sender():
    topo = make_topology([(0, 1, 0.01)])
    node_failures = NodeFailureSchedule(topo, 1.0, seed=1)
    sim, network = make_network(topo, node_failures=node_failures)
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    assert received == []
    assert network.stats.lost_node_down[FrameKind.DATA] == 1


def test_detached_node_silently_drops():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo)
    received = []
    network.attach(1, lambda s, f: received.append(f))
    network.detach(1)
    network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    assert received == []


def test_attach_unknown_node_rejected():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo)
    with pytest.raises(SimulationError):
        network.attach(7, lambda s, f: None)


def test_stats_track_per_kind():
    topo = make_topology([(0, 1, 0.01)])
    sim, network = make_network(topo)
    network.attach(1, lambda s, f: None)
    network.attach(0, lambda s, f: None)
    network.transmit(0, 1, "d", FrameKind.DATA)
    network.transmit(1, 0, "a", FrameKind.ACK)
    network.transmit(0, 1, "p", FrameKind.PROBE)
    sim.run()
    assert network.stats.sent[FrameKind.DATA] == 1
    assert network.stats.sent[FrameKind.ACK] == 1
    assert network.stats.sent[FrameKind.PROBE] == 1
    assert network.stats.data_sent() == 1
    assert network.stats.delivered[FrameKind.ACK] == 1


def test_trace_records_transmissions():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
    sim, network = make_network(topo, failures=failures)
    network.attach(1, lambda s, f: None)
    network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    assert len(network.transmissions) == 1
    record = network.transmissions[0]
    assert record.src == 0 and record.dst == 1 and not record.survived


def test_link_up_reflects_failure_schedule():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({(0, 1): [(1.0, 2.0)]})
    sim, network = make_network(topo, failures=failures)
    assert network.link_up(0, 1)
    sim.run(until=1.5)
    assert not network.link_up(0, 1)


def test_expected_success_probability_combines_hazards():
    topo = make_topology([(0, 1, 0.01)])
    failures = ScriptedFailures({}, failure_probability=0.1)
    sim, network = make_network(topo, loss_rate=0.2, failures=failures)
    assert network.expected_success_probability() == pytest.approx(0.9 * 0.8)

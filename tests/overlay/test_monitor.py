"""Unit tests for link monitoring."""

import pytest

from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError
from tests.conftest import ScriptedFailures, make_topology


def make_monitor(loss_rate=0.0, failure_probability=0.0, mode="analytic", **kwargs):
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.030)])
    sim = Simulator()
    streams = RandomStreams(3)
    failures = (
        ScriptedFailures({}, failure_probability=failure_probability)
        if failure_probability
        else None
    )
    network = OverlayNetwork(sim, topo, streams, loss_rate=loss_rate, failures=failures)
    return topo, LinkMonitor(topo, network, streams, mode=mode, **kwargs)


def test_analytic_alpha_equals_link_delay():
    topo, monitor = make_monitor()
    assert monitor.estimate(0, 1).alpha == pytest.approx(0.010)
    assert monitor.estimate(2, 1).alpha == pytest.approx(0.030)


def test_analytic_gamma_combines_loss_and_failure():
    _, monitor = make_monitor(loss_rate=0.2, failure_probability=0.1)
    assert monitor.estimate(0, 1).gamma == pytest.approx(0.9 * 0.8)


def test_analytic_gamma_without_hazards_is_one():
    _, monitor = make_monitor()
    assert monitor.estimate(0, 1).gamma == pytest.approx(1.0)


def test_estimates_snapshot_covers_all_edges():
    topo, monitor = make_monitor()
    estimates = monitor.estimates()
    assert set(estimates) == set(topo.edges())


def test_refresh_counter_increments():
    _, monitor = make_monitor()
    before = monitor.refreshes
    monitor.refresh()
    assert monitor.refreshes == before + 1


def test_sampled_mode_tracks_truth_after_refreshes():
    _, monitor = make_monitor(
        loss_rate=0.3, mode="sampled", probes_per_cycle=400, ewma_weight=0.5
    )
    for _ in range(20):
        monitor.refresh()
    assert monitor.estimate(0, 1).gamma == pytest.approx(0.7, abs=0.08)


def test_sampled_mode_never_reports_zero_gamma():
    _, monitor = make_monitor(
        loss_rate=1.0, mode="sampled", probes_per_cycle=10, gamma_floor=1e-6
    )
    monitor.refresh()
    assert monitor.estimate(0, 1).gamma >= 1e-6


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        make_monitor(mode="psychic")


def test_invalid_probe_count_rejected():
    with pytest.raises(ConfigurationError):
        make_monitor(mode="sampled", probes_per_cycle=0)


def test_mode_property():
    _, monitor = make_monitor(mode="sampled")
    assert monitor.mode == "sampled"


def test_version_bumps_only_on_actual_change():
    """Analytic estimates are deterministic, so repeat refreshes are no-ops."""
    _, monitor = make_monitor(loss_rate=0.2)
    assert monitor.version == 1  # the constructor's initial cycle
    for _ in range(3):
        monitor.refresh()
    assert monitor.version == 1
    assert monitor.refreshes == 4


def test_version_and_last_changed_track_sampled_refreshes():
    topo, monitor = make_monitor(loss_rate=0.3, mode="sampled", probes_per_cycle=50)
    assert monitor.version == 1
    assert monitor.last_changed == frozenset(topo.edges())
    before = monitor.snapshot()
    monitor.refresh()
    changed = {
        edge for edge in topo.edges() if monitor.estimate(*edge) != before[edge]
    }
    assert monitor.last_changed == changed
    assert monitor.version == (2 if changed else 1)


def test_estimates_view_is_read_only():
    topo, monitor = make_monitor()
    view = monitor.estimates()
    with pytest.raises(TypeError):
        view[(0, 1)] = view[(0, 1)]


def test_estimates_view_is_live_and_snapshot_is_isolated():
    _, monitor = make_monitor(loss_rate=0.3, mode="sampled", probes_per_cycle=50)
    view = monitor.estimates()
    frozen = monitor.snapshot()
    stale = dict(view)
    monitor.refresh()
    assert dict(view) != stale  # the view tracks the refresh...
    assert frozen == stale  # ...while the snapshot does not.

"""Unit tests for link monitoring."""

import pytest

from repro.overlay.links import OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import ConfigurationError
from tests.conftest import ScriptedFailures, make_topology


def make_monitor(loss_rate=0.0, failure_probability=0.0, mode="analytic", **kwargs):
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.030)])
    sim = Simulator()
    streams = RandomStreams(3)
    failures = (
        ScriptedFailures({}, failure_probability=failure_probability)
        if failure_probability
        else None
    )
    network = OverlayNetwork(sim, topo, streams, loss_rate=loss_rate, failures=failures)
    return topo, LinkMonitor(topo, network, streams, mode=mode, **kwargs)


def test_analytic_alpha_equals_link_delay():
    topo, monitor = make_monitor()
    assert monitor.estimate(0, 1).alpha == pytest.approx(0.010)
    assert monitor.estimate(2, 1).alpha == pytest.approx(0.030)


def test_analytic_gamma_combines_loss_and_failure():
    _, monitor = make_monitor(loss_rate=0.2, failure_probability=0.1)
    assert monitor.estimate(0, 1).gamma == pytest.approx(0.9 * 0.8)


def test_analytic_gamma_without_hazards_is_one():
    _, monitor = make_monitor()
    assert monitor.estimate(0, 1).gamma == pytest.approx(1.0)


def test_estimates_snapshot_covers_all_edges():
    topo, monitor = make_monitor()
    estimates = monitor.estimates()
    assert set(estimates) == set(topo.edges())


def test_refresh_counter_increments():
    _, monitor = make_monitor()
    before = monitor.refreshes
    monitor.refresh()
    assert monitor.refreshes == before + 1


def test_sampled_mode_tracks_truth_after_refreshes():
    _, monitor = make_monitor(
        loss_rate=0.3, mode="sampled", probes_per_cycle=400, ewma_weight=0.5
    )
    for _ in range(20):
        monitor.refresh()
    assert monitor.estimate(0, 1).gamma == pytest.approx(0.7, abs=0.08)


def test_sampled_mode_never_reports_zero_gamma():
    _, monitor = make_monitor(
        loss_rate=1.0, mode="sampled", probes_per_cycle=10, gamma_floor=1e-6
    )
    monitor.refresh()
    assert monitor.estimate(0, 1).gamma >= 1e-6


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        make_monitor(mode="psychic")


def test_invalid_probe_count_rejected():
    with pytest.raises(ConfigurationError):
        make_monitor(mode="sampled", probes_per_cycle=0)


def test_mode_property():
    _, monitor = make_monitor(mode="sampled")
    assert monitor.mode == "sampled"

"""Tests for the finite-capacity (queueing) link mode."""

import pytest

from repro.overlay.links import FrameKind, OverlayNetwork
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.util.errors import SimulationError
from tests.conftest import make_topology


def make_network(service_time=None):
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.010)])
    sim = Simulator()
    network = OverlayNetwork(
        sim, topo, RandomStreams(1), service_time=service_time, trace=True
    )
    return sim, network


def test_single_frame_pays_service_plus_propagation():
    sim, network = make_network(service_time=0.005)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(sim.now))
    network.transmit(0, 1, "a", FrameKind.DATA)
    sim.run()
    assert arrivals == [pytest.approx(0.015)]


def test_back_to_back_frames_queue_fifo():
    sim, network = make_network(service_time=0.005)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append((f, sim.now)))
    network.transmit(0, 1, "a", FrameKind.DATA)
    network.transmit(0, 1, "b", FrameKind.DATA)
    network.transmit(0, 1, "c", FrameKind.DATA)
    sim.run()
    assert arrivals == [
        ("a", pytest.approx(0.015)),
        ("b", pytest.approx(0.020)),
        ("c", pytest.approx(0.025)),
    ]


def test_directions_are_independent_servers():
    sim, network = make_network(service_time=0.005)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(("fwd", sim.now)))
    network.attach(0, lambda s, f: arrivals.append(("rev", sim.now)))
    network.transmit(0, 1, "a", FrameKind.DATA)
    network.transmit(1, 0, "b", FrameKind.DATA)
    sim.run()
    assert set(arrivals) == {("fwd", 0.015), ("rev", 0.015)}


def test_links_are_independent_servers():
    sim, network = make_network(service_time=0.005)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(sim.now))
    network.attach(2, lambda s, f: arrivals.append(sim.now))
    network.transmit(0, 1, "a", FrameKind.DATA)
    network.transmit(1, 2, "b", FrameKind.DATA)
    sim.run()
    assert arrivals == [pytest.approx(0.015), pytest.approx(0.015)]


def test_acks_skip_the_queue():
    sim, network = make_network(service_time=0.050)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append((f, sim.now)))
    network.transmit(0, 1, "big", FrameKind.DATA)
    network.transmit(0, 1, "ack", FrameKind.ACK)
    sim.run()
    assert ("ack", pytest.approx(0.010)) in [
        (f, pytest.approx(t)) for f, t in arrivals
    ]


def test_idle_link_has_no_backlog():
    sim, network = make_network(service_time=0.005)
    assert network.queueing_backlog(0, 1) == 0.0


def test_backlog_reflects_queue_depth():
    sim, network = make_network(service_time=0.005)
    network.attach(1, lambda s, f: None)
    network.transmit(0, 1, "a", FrameKind.DATA)
    network.transmit(0, 1, "b", FrameKind.DATA)
    assert network.queueing_backlog(0, 1) == pytest.approx(0.010)


def test_no_service_time_means_no_queueing():
    sim, network = make_network(service_time=None)
    arrivals = []
    network.attach(1, lambda s, f: arrivals.append(sim.now))
    for _ in range(5):
        network.transmit(0, 1, "x", FrameKind.DATA)
    sim.run()
    assert all(t == pytest.approx(0.010) for t in arrivals)


def test_invalid_service_time_rejected():
    with pytest.raises(SimulationError):
        make_network(service_time=0.0)

"""Unit tests for topology generators and queries."""

import networkx as nx
import numpy as np
import pytest

from repro.overlay.topology import (
    Topology,
    canonical_edge,
    erdos_renyi,
    full_mesh,
    line,
    random_regular,
    ring,
    star,
    waxman,
)
from repro.util.errors import TopologyError
from tests.conftest import make_topology


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_self_loop_is_stable(self):
        assert canonical_edge(2, 2) == (2, 2)


class TestTopologyQueries:
    def test_triangle_basic_queries(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020), (0, 2, 0.050)])
        assert topo.num_nodes == 3
        assert topo.num_edges == 3
        assert topo.neighbors(0) == (1, 2)
        assert topo.degree(1) == 2
        assert topo.has_edge(2, 0)
        assert topo.delay(2, 0) == pytest.approx(0.050)

    def test_shortest_delay_prefers_two_hop_when_cheaper(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020), (0, 2, 0.050)])
        assert topo.shortest_delay(0, 2) == pytest.approx(0.030)
        assert topo.shortest_delay_path(0, 2) == [0, 1, 2]

    def test_shortest_hops_prefers_direct_link(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020), (0, 2, 0.050)])
        assert topo.shortest_hops(0, 2) == 1
        assert topo.shortest_hop_path(0, 2) == [0, 2]

    def test_delay_missing_edge_raises(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.020)])
        with pytest.raises(TopologyError):
            topo.delay(0, 2)

    def test_edge_set_is_canonical(self):
        topo = make_topology([(1, 0, 0.010), (2, 1, 0.020)])
        assert topo.edge_set() == frozenset({(0, 1), (1, 2)})

    def test_shortest_delay_to_self_is_zero(self):
        topo = make_topology([(0, 1, 0.010)])
        assert topo.shortest_delay(0, 0) == 0.0


class TestTopologyValidation:
    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(TopologyError):
            Topology(graph, {(0, 1): 0.01, (2, 3): 0.01})

    def test_nodes_must_be_contiguous_from_zero(self):
        graph = nx.Graph()
        graph.add_edge(5, 6)
        with pytest.raises(TopologyError):
            Topology(graph, {(5, 6): 0.01})

    def test_missing_delay_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(TopologyError):
            Topology(graph, {(0, 1): 0.01})

    def test_non_positive_delay_rejected(self):
        graph = nx.path_graph(2)
        with pytest.raises(TopologyError):
            Topology(graph, {(0, 1): 0.0})

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph(), {})


class TestGenerators:
    def test_full_mesh_connects_every_pair(self, rng):
        topo = full_mesh(8, rng)
        assert topo.num_edges == 8 * 7 // 2
        for node in topo.nodes:
            assert topo.degree(node) == 7

    def test_full_mesh_delays_in_paper_range(self, rng):
        topo = full_mesh(10, rng)
        for edge in topo.edges():
            assert 0.010 <= topo.delay(*edge) <= 0.050

    def test_custom_delay_range_respected(self, rng):
        topo = full_mesh(6, rng, delay_range=(0.001, 0.002))
        for edge in topo.edges():
            assert 0.001 <= topo.delay(*edge) <= 0.002

    def test_random_regular_has_exact_degree(self, rng):
        topo = random_regular(20, 5, rng)
        for node in topo.nodes:
            assert topo.degree(node) == 5

    def test_random_regular_is_connected(self, rng):
        for _ in range(5):
            topo = random_regular(12, 3, rng)
            assert nx.is_connected(topo.graph)

    def test_random_regular_odd_product_rejected(self, rng):
        with pytest.raises(Exception):
            random_regular(5, 3, rng)  # 15 is odd

    def test_random_regular_degree_bounds(self, rng):
        with pytest.raises(Exception):
            random_regular(10, 0, rng)
        with pytest.raises(Exception):
            random_regular(10, 10, rng)

    def test_erdos_renyi_connected(self, rng):
        topo = erdos_renyi(15, 0.4, rng)
        assert nx.is_connected(topo.graph)

    def test_waxman_connected(self, rng):
        topo = waxman(15, rng)
        assert nx.is_connected(topo.graph)
        assert topo.num_nodes == 15

    def test_ring_shape(self, rng):
        topo = ring(6, rng)
        assert topo.num_edges == 6
        for node in topo.nodes:
            assert topo.degree(node) == 2

    def test_line_shape(self, rng):
        topo = line(5, rng)
        assert topo.num_edges == 4
        assert topo.degree(0) == 1 and topo.degree(4) == 1

    def test_star_shape(self, rng):
        topo = star(7, rng)
        assert topo.degree(0) == 6
        for node in range(1, 7):
            assert topo.degree(node) == 1

    def test_generation_is_deterministic_per_seed(self):
        a = random_regular(16, 4, np.random.default_rng(5))
        b = random_regular(16, 4, np.random.default_rng(5))
        assert a.edge_set() == b.edge_set()
        for edge in a.edges():
            assert a.delay(*edge) == b.delay(*edge)

"""Unit tests for the broker runtime (ACKing, dedup, local delivery)."""

import pytest

from repro.overlay.links import FrameKind
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.base import RoutingStrategy
from repro.util.errors import SimulationError
from tests.conftest import build_ctx, make_topology, single_topic_workload


class RecordingStrategy(RoutingStrategy):
    """Captures every delegated call for assertions."""

    name = "recording"
    uses_acks = True

    def __init__(self, ctx):
        super().__init__(ctx)
        self.data_calls = []
        self.ack_calls = []

    def publish(self, spec: TopicSpec, msg_id: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def handle_data(self, node, sender, frame):
        self.data_calls.append((node, sender, frame))

    def handle_ack(self, node, sender, ack):
        self.ack_calls.append((node, sender, ack))


def make_setup(uses_acks=True, subscribers=((2, 1.0),)):
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.010)])
    workload = single_topic_workload(publisher=0, subscribers=subscribers)
    ctx = build_ctx(topo, workload)
    strategy = RecordingStrategy(ctx)
    strategy.uses_acks = uses_acks
    brokers = {node: BrokerRuntime(node, ctx, strategy) for node in topo.nodes}
    return ctx, strategy, brokers


def data_frame(ctx, destinations, path=(0,), msg_id=1, topic=0):
    ctx.metrics.expect(msg_id, topic, 0.0, {node: 1.0 for node in destinations})
    return PacketFrame.fresh(
        msg_id=msg_id,
        topic=topic,
        origin=0,
        publish_time=0.0,
        destinations=frozenset(destinations),
        routing_path=tuple(path),
    )


def test_data_frame_is_acked_to_sender():
    ctx, strategy, brokers = make_setup()
    frame = data_frame(ctx, {2})
    brokers[1].on_frame(0, frame)
    ctx.sim.run()
    acks = [t for t in ctx.network.transmissions if t.kind == FrameKind.ACK]
    assert len(acks) == 1
    assert acks[0].src == 1 and acks[0].dst == 0


def test_no_ack_when_strategy_does_not_use_acks():
    ctx, strategy, brokers = make_setup(uses_acks=False)
    frame = data_frame(ctx, {2})
    brokers[1].on_frame(0, frame)
    ctx.sim.run()
    assert not any(t.kind == FrameKind.ACK for t in ctx.network.transmissions)


def test_forwarding_delegated_to_strategy():
    ctx, strategy, brokers = make_setup()
    frame = data_frame(ctx, {2})
    brokers[1].on_frame(0, frame)
    assert len(strategy.data_calls) == 1
    node, sender, received = strategy.data_calls[0]
    assert node == 1 and sender == 0
    assert received.destinations == frozenset({2})


def test_duplicate_copy_is_reacked_but_not_reprocessed():
    ctx, strategy, brokers = make_setup()
    frame = data_frame(ctx, {2})
    brokers[1].on_frame(0, frame)
    brokers[1].on_frame(0, frame)  # identical retransmission
    ctx.sim.run()
    acks = [t for t in ctx.network.transmissions if t.kind == FrameKind.ACK]
    assert len(acks) == 2  # both copies ACKed (the first ACK may have died)
    assert len(strategy.data_calls) == 1
    assert brokers[1].duplicates_suppressed == 1


def test_distinct_copies_of_same_message_both_processed():
    ctx, strategy, brokers = make_setup()
    frame = data_frame(ctx, {2})
    bounced = frame.forwarded(sender=1, destinations=frame.destinations)
    brokers[1].on_frame(0, frame)
    brokers[1].on_frame(2, bounced)
    assert len(strategy.data_calls) == 2


def test_local_delivery_recorded_and_stripped():
    ctx, strategy, brokers = make_setup(subscribers=((1, 1.0), (2, 1.0)))
    frame = data_frame(ctx, {1, 2})
    brokers[1].on_frame(0, frame)
    outcome = ctx.metrics.outcome(1, 1)
    assert outcome.delivered
    # Forwarding continues with node 1 removed from the destinations.
    assert strategy.data_calls[0][2].destinations == frozenset({2})
    assert brokers[1].local_deliveries == 1


def test_frame_fully_consumed_locally_is_not_forwarded():
    ctx, strategy, brokers = make_setup(subscribers=((1, 1.0),))
    frame = data_frame(ctx, {1})
    brokers[1].on_frame(0, frame)
    assert strategy.data_calls == []


def test_destination_without_local_subscription_not_delivered():
    # Node 1 is in the destination set but hosts no subscriber of topic 0.
    ctx, strategy, brokers = make_setup(subscribers=((2, 1.0),))
    frame = data_frame(ctx, {1, 2}, msg_id=5)
    brokers[1].on_frame(0, frame)
    # Remaining destinations exclude node 1 (it was addressed in error) but
    # nothing was recorded as delivered for it.
    assert not ctx.metrics.outcome(5, 1).delivered


def test_ack_routed_to_strategy():
    ctx, strategy, brokers = make_setup()
    ack = AckFrame(msg_id=1, acker=1, transfer_id=9)
    brokers[0].on_frame(1, ack)
    assert strategy.ack_calls == [(0, 1, ack)]


def test_unknown_frame_type_rejected():
    ctx, strategy, brokers = make_setup()
    with pytest.raises(SimulationError):
        brokers[1].on_frame(0, "garbage")


def test_local_topics_property():
    ctx, strategy, brokers = make_setup(subscribers=((2, 1.0),))
    assert brokers[2].local_topics == {0}
    assert brokers[1].local_topics == set()

"""Dedup-window eviction behaviour of the broker runtime."""

import pytest

import repro.pubsub.broker as broker_module
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import PacketFrame
from repro.pubsub.topics import TopicSpec
from repro.routing.base import RoutingStrategy
from tests.conftest import build_ctx, make_topology, single_topic_workload


class SilentStrategy(RoutingStrategy):
    name = "silent"
    uses_acks = False

    def __init__(self, ctx):
        super().__init__(ctx)
        self.seen = []

    def publish(self, spec: TopicSpec, msg_id: int):  # pragma: no cover
        raise NotImplementedError

    def handle_data(self, node, sender, frame):
        self.seen.append(frame.transfer_id)


def frame_to(ctx, node, msg_id):
    ctx.metrics.expect(msg_id, 0, 0.0, {9: 1.0})
    return PacketFrame.fresh(
        msg_id=msg_id,
        topic=0,
        origin=0,
        publish_time=0.0,
        destinations=frozenset({9}),
        routing_path=(0,),
    )


def test_window_eviction_allows_old_copy_again(monkeypatch):
    monkeypatch.setattr(broker_module, "DEDUP_CAPACITY", 3)
    topo = make_topology([(0, 1, 0.010)])
    workload = single_topic_workload(0, [(1, 1.0)])
    ctx = build_ctx(topo, workload)
    strategy = SilentStrategy(ctx)
    runtime = BrokerRuntime(1, ctx, strategy)

    first = frame_to(ctx, 1, msg_id=1)
    runtime.on_frame(0, first)
    assert strategy.seen == [first.transfer_id]

    # Re-delivery while still in the window: suppressed.
    runtime.on_frame(0, first)
    assert strategy.seen == [first.transfer_id]

    # Push enough distinct copies through to evict the first entry.
    for msg_id in range(2, 6):
        runtime.on_frame(0, frame_to(ctx, 1, msg_id=msg_id))
    runtime.on_frame(0, first)  # evicted -> processed again
    assert strategy.seen.count(first.transfer_id) == 2
    assert runtime.duplicates_suppressed == 1


def test_default_window_is_large():
    assert broker_module.DEDUP_CAPACITY >= 1 << 16

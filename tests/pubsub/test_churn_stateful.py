"""Stateful property test of the runtime subscription API.

A hypothesis rule machine performs random joins and leaves against a
model (a plain dict of sets) and checks the workload container never
diverges: topic membership, deadline bookkeeping, version monotonicity.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.pubsub.topics import Subscription, TopicSpec, Workload

TOPICS = [0, 1, 2]
NODES = list(range(8))


class ChurnMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.workload = Workload(
            topics=[
                TopicSpec(topic=t, publisher=7, subscriptions=(Subscription(0, 1.0),))
                for t in TOPICS
            ]
        )
        self.model = {t: {0} for t in TOPICS}
        self.last_version = self.workload.version

    @rule(topic=st.sampled_from(TOPICS), node=st.sampled_from(NODES),
          deadline=st.floats(min_value=0.01, max_value=5.0))
    def join(self, topic, node, deadline):
        if node in self.model[topic]:
            return
        self.workload.add_subscription(topic, Subscription(node, deadline))
        self.model[topic].add(node)
        assert self.workload.version > self.last_version
        self.last_version = self.workload.version

    @rule(topic=st.sampled_from(TOPICS), node=st.sampled_from(NODES))
    def leave(self, topic, node):
        if node not in self.model[topic] or len(self.model[topic]) == 1:
            return
        removed = self.workload.remove_subscription(topic, node)
        assert removed.node == node
        self.model[topic].discard(node)
        self.last_version = self.workload.version

    @invariant()
    def membership_matches_model(self):
        if not hasattr(self, "workload"):
            return
        for topic in TOPICS:
            spec = self.workload.topic(topic)
            assert set(spec.subscriber_nodes) == self.model[topic]
            # Subscriptions stay sorted and unique.
            nodes = list(spec.subscriber_nodes)
            assert nodes == sorted(set(nodes))

    @invariant()
    def totals_consistent(self):
        if not hasattr(self, "workload"):
            return
        assert self.workload.total_subscriptions == sum(
            len(nodes) for nodes in self.model.values()
        )


TestChurnMachine = ChurnMachine.TestCase
TestChurnMachine.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)

"""Tests for runtime subscription changes on the workload container."""

import pytest

from repro.pubsub.topics import Subscription, TopicSpec, Workload


@pytest.fixture
def workload():
    return Workload(
        topics=[
            TopicSpec(0, 1, (Subscription(2, 0.1), Subscription(3, 0.1))),
            TopicSpec(1, 4, (Subscription(5, 0.1),)),
        ]
    )


def test_add_subscription(workload):
    workload.add_subscription(0, Subscription(7, 0.2))
    spec = workload.topic(0)
    assert spec.subscriber_nodes == (2, 3, 7)
    assert spec.deadline_of(7) == 0.2


def test_add_bumps_version(workload):
    before = workload.version
    workload.add_subscription(0, Subscription(7, 0.2))
    assert workload.version == before + 1


def test_add_existing_rejected(workload):
    with pytest.raises(KeyError):
        workload.add_subscription(0, Subscription(2, 0.2))


def test_remove_subscription(workload):
    removed = workload.remove_subscription(0, 2)
    assert removed.node == 2
    assert workload.topic(0).subscriber_nodes == (3,)


def test_remove_unknown_rejected(workload):
    with pytest.raises(KeyError):
        workload.remove_subscription(0, 9)


def test_remove_from_unknown_topic_rejected(workload):
    with pytest.raises(KeyError):
        workload.remove_subscription(9, 2)


def test_other_topics_untouched(workload):
    workload.add_subscription(0, Subscription(7, 0.2))
    assert workload.topic(1).subscriber_nodes == (5,)


def test_subscriptions_stay_sorted_by_node(workload):
    workload.add_subscription(0, Subscription(1, 0.2))
    assert workload.topic(0).subscriber_nodes == (1, 2, 3)

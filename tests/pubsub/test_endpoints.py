"""Unit tests for publisher processes."""

from repro.pubsub.endpoints import PublisherProcess
from repro.pubsub.topics import Subscription, TopicSpec, Workload
from repro.routing.base import RoutingStrategy
from tests.conftest import build_ctx, make_topology


class CountingStrategy(RoutingStrategy):
    name = "counting"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.published = []

    def publish(self, spec, msg_id):
        self.published.append((spec.topic, msg_id, self.ctx.sim.now))

    def handle_data(self, node, sender, frame):  # pragma: no cover
        raise NotImplementedError


def make_setup(interval=1.0, phase=0.0, stop_time=None):
    topo = make_topology([(0, 1, 0.010)])
    spec = TopicSpec(
        topic=0,
        publisher=0,
        subscriptions=(Subscription(1, 0.5),),
        publish_interval=interval,
        phase=phase,
    )
    ctx = build_ctx(topo, Workload(topics=[spec]))
    strategy = CountingStrategy(ctx)
    publisher = PublisherProcess(ctx, strategy, spec, stop_time=stop_time)
    return ctx, strategy, publisher


def test_publishes_at_interval():
    ctx, strategy, publisher = make_setup(interval=1.0)
    publisher.start()
    ctx.sim.run(until=5.0)
    assert publisher.published == 6  # t = 0, 1, 2, 3, 4, 5
    times = [t for _, _, t in strategy.published]
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


def test_phase_offsets_first_packet():
    ctx, strategy, publisher = make_setup(interval=1.0, phase=0.4)
    publisher.start()
    ctx.sim.run(until=2.0)
    times = [t for _, _, t in strategy.published]
    assert times == [0.4, 1.4]


def test_stop_time_halts_publishing():
    ctx, strategy, publisher = make_setup(interval=1.0, stop_time=3.0)
    publisher.start()
    ctx.sim.run(until=10.0)
    times = [t for _, _, t in strategy.published]
    assert max(times) < 3.0


def test_manual_stop():
    ctx, strategy, publisher = make_setup(interval=1.0)
    publisher.start()
    ctx.sim.schedule(2.5, publisher.stop)
    ctx.sim.run(until=10.0)
    assert publisher.published == 3


def test_each_message_registered_with_metrics():
    ctx, strategy, publisher = make_setup(interval=1.0, stop_time=3.0)
    publisher.start()
    ctx.sim.run(until=10.0)
    assert ctx.metrics.messages_published == publisher.published
    assert ctx.metrics.expected_deliveries == publisher.published  # 1 sub


def test_message_ids_unique_across_topics():
    topo = make_topology([(0, 1, 0.010), (1, 2, 0.010)])
    specs = [
        TopicSpec(0, 0, (Subscription(1, 0.5),), 1.0, 0.0),
        TopicSpec(1, 1, (Subscription(2, 0.5),), 1.0, 0.5),
    ]
    from repro.pubsub.topics import Workload

    ctx = build_ctx(topo, Workload(topics=specs))
    strategy = CountingStrategy(ctx)
    publishers = [PublisherProcess(ctx, strategy, spec, stop_time=3.0) for spec in specs]
    for publisher in publishers:
        publisher.start()
    ctx.sim.run(until=5.0)
    ids = [msg_id for _, msg_id, _ in strategy.published]
    assert len(ids) == len(set(ids))

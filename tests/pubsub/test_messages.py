"""Unit tests for wire frames and id allocation."""

from repro.pubsub.messages import (
    AckFrame,
    PacketFrame,
    next_message_id,
    next_transfer_id,
    reset_message_ids,
)


def make_frame(**overrides):
    defaults = dict(
        msg_id=1,
        topic=0,
        origin=0,
        publish_time=0.0,
        destinations=frozenset({3, 4}),
        routing_path=(),
    )
    defaults.update(overrides)
    return PacketFrame.fresh(**defaults)


class TestIds:
    def test_message_ids_monotonic(self):
        first = next_message_id()
        second = next_message_id()
        assert second == first + 1

    def test_reset_restarts_counters(self):
        next_message_id()
        next_transfer_id()
        reset_message_ids()
        assert next_message_id() == 1
        assert next_transfer_id() == 1

    def test_fresh_frames_get_distinct_transfer_ids(self):
        a = make_frame()
        b = make_frame()
        assert a.transfer_id != b.transfer_id


class TestForwarding:
    def test_forwarded_appends_sender_to_path(self):
        frame = make_frame(routing_path=(0,))
        copy = frame.forwarded(sender=1, destinations=frozenset({3}))
        assert copy.routing_path == (0, 1)
        assert copy.destinations == frozenset({3})

    def test_forwarded_preserves_message_identity(self):
        frame = make_frame()
        copy = frame.forwarded(sender=0, destinations=frame.destinations)
        assert copy.msg_id == frame.msg_id
        assert copy.topic == frame.topic
        assert copy.origin == frame.origin
        assert copy.publish_time == frame.publish_time

    def test_forwarded_allocates_new_transfer_id(self):
        frame = make_frame()
        copy = frame.forwarded(sender=0, destinations=frame.destinations)
        assert copy.transfer_id != frame.transfer_id

    def test_forwarded_carries_source_route(self):
        frame = make_frame(source_route=(5, 6))
        copy = frame.forwarded(0, frame.destinations, source_route=(6,))
        assert copy.source_route == (6,)

    def test_visited(self):
        frame = make_frame(routing_path=(0, 2))
        assert frame.visited(2)
        assert not frame.visited(3)


class TestUpstream:
    def test_origin_has_no_upstream(self):
        frame = make_frame(routing_path=())
        assert frame.upstream_of(0) == -1

    def test_receiver_upstream_is_last_sender(self):
        # 0 sent to 1: at node 1, the upstream is 0.
        frame = make_frame(routing_path=(0,))
        assert frame.upstream_of(1) == 0

    def test_sender_upstream_is_predecessor_of_first_appearance(self):
        # Path 0 -> 1 -> 2, bounced back: node 1's upstream is 0.
        frame = make_frame(routing_path=(0, 1, 2))
        assert frame.upstream_of(1) == 0

    def test_origin_on_path_upstream_is_minus_one(self):
        frame = make_frame(routing_path=(0, 1))
        assert frame.upstream_of(0) == -1

    def test_repeated_appearance_uses_first(self):
        # 0 -> 1 -> 2 -> (bounce) 1 -> 3: node 1 appears twice; its
        # upstream stays 0.
        frame = make_frame(routing_path=(0, 1, 2, 1))
        assert frame.upstream_of(1) == 0


class TestDedup:
    def test_dedup_key_is_transfer_id(self):
        frame = make_frame()
        assert frame.dedup_key() == frame.transfer_id

    def test_distinct_copies_have_distinct_keys(self):
        frame = make_frame()
        copy = frame.forwarded(0, frame.destinations)
        assert frame.dedup_key() != copy.dedup_key()


class TestPriorityAndSize:
    def test_default_priority_is_inf(self):
        assert make_frame().priority == float("inf")

    def test_forwarded_inherits_priority(self):
        frame = make_frame(priority=3.5)
        copy = frame.forwarded(0, frame.destinations)
        assert copy.priority == 3.5

    def test_forwarded_priority_override(self):
        frame = make_frame(priority=3.5)
        copy = frame.forwarded(0, frame.destinations, priority=1.25)
        assert copy.priority == 1.25

    def test_forwarded_preserves_size_and_fragments(self):
        frame = make_frame(size=0.5, fragment_index=1, fragments_needed=2)
        copy = frame.forwarded(0, frame.destinations)
        assert copy.size == 0.5
        assert copy.fragment_index == 1
        assert copy.fragments_needed == 2


class TestPathSetSync:
    """``path_set`` must stay a frozenset view of ``routing_path``.

    The copy fast paths write slots directly and extend ``path_set``
    incrementally, so these pin the derived-field invariant through every
    constructor.
    """

    def test_fresh_derives_path_set(self):
        frame = make_frame(routing_path=(0, 5, 2))
        assert frame.path_set == frozenset(frame.routing_path)
        assert isinstance(frame.path_set, frozenset)

    def test_forwarded_keeps_path_set_in_sync(self):
        frame = make_frame(routing_path=(0,))
        copy = frame.forwarded(5, frame.destinations)
        assert copy.routing_path == (0, 5)
        assert copy.path_set == frozenset(copy.routing_path)
        assert isinstance(copy.path_set, frozenset)

    def test_forwarded_chain_keeps_path_set_in_sync(self):
        frame = make_frame()
        for hop in (0, 7, 3, 7):  # a repeated sender must not diverge
            frame = frame.forwarded(hop, frame.destinations)
        assert frame.routing_path == (0, 7, 3, 7)
        assert frame.path_set == frozenset({0, 7, 3})

    def test_forwarded_does_not_mutate_parent(self):
        frame = make_frame(routing_path=(0,))
        frame.forwarded(5, frame.destinations)
        assert frame.routing_path == (0,)
        assert frame.path_set == frozenset({0})

    def test_with_destinations_preserves_path_set(self):
        frame = make_frame(routing_path=(0, 5))
        copy = frame.with_destinations(frozenset({4}))
        assert copy.routing_path == frame.routing_path
        assert copy.path_set == frame.path_set
        assert copy.transfer_id == frame.transfer_id

    def test_explicit_path_set_override_used_verbatim(self):
        explicit = frozenset({0, 5})
        frame = PacketFrame(
            msg_id=1,
            transfer_id=9,
            topic=0,
            origin=0,
            publish_time=0.0,
            destinations=frozenset({4}),
            routing_path=(0, 5),
            _path_set=explicit,
        )
        assert frame.path_set is explicit


class TestAckFrame:
    def test_fields(self):
        ack = AckFrame(msg_id=7, acker=3, transfer_id=99)
        assert ack.msg_id == 7 and ack.acker == 3 and ack.transfer_id == 99

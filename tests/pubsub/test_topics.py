"""Unit tests for topics, subscriptions, and the workload generator."""

import numpy as np
import pytest

from repro.overlay.topology import full_mesh
from repro.pubsub.topics import (
    Subscription,
    TopicSpec,
    Workload,
    generate_workload,
    rescale_deadlines,
)
from repro.util.errors import ConfigurationError


@pytest.fixture
def topo(rng):
    return full_mesh(20, rng)


class TestTopicSpec:
    def test_subscriber_nodes_order(self):
        spec = TopicSpec(
            topic=0,
            publisher=1,
            subscriptions=(Subscription(3, 0.1), Subscription(5, 0.2)),
        )
        assert spec.subscriber_nodes == (3, 5)

    def test_deadline_lookup(self):
        spec = TopicSpec(
            topic=0,
            publisher=1,
            subscriptions=(Subscription(3, 0.1),),
        )
        assert spec.deadline_of(3) == 0.1
        with pytest.raises(KeyError):
            spec.deadline_of(4)


class TestWorkloadContainer:
    def test_totals(self):
        workload = Workload(
            topics=[
                TopicSpec(0, 1, (Subscription(2, 0.1), Subscription(3, 0.1))),
                TopicSpec(1, 4, (Subscription(5, 0.1),)),
            ]
        )
        assert workload.num_topics == 2
        assert workload.total_subscriptions == 3

    def test_topic_lookup(self):
        workload = Workload(topics=[TopicSpec(7, 1, (Subscription(2, 0.1),))])
        assert workload.topic(7).publisher == 1
        with pytest.raises(KeyError):
            workload.topic(9)

    def test_pairs(self):
        workload = Workload(topics=[TopicSpec(0, 1, (Subscription(2, 0.5),))])
        assert workload.pairs() == [(0, 1, 2, 0.5)]


class TestGenerateWorkload:
    def test_topic_count(self, topo, rng):
        workload = generate_workload(topo, rng, num_topics=10)
        assert workload.num_topics == 10

    def test_publishers_distinct_when_possible(self, topo, rng):
        workload = generate_workload(topo, rng, num_topics=10)
        publishers = [spec.publisher for spec in workload.topics]
        assert len(set(publishers)) == 10

    def test_more_topics_than_nodes_allowed(self, rng):
        topo = full_mesh(4, rng)
        workload = generate_workload(topo, rng, num_topics=6)
        assert workload.num_topics == 6

    def test_every_topic_has_a_subscriber(self, topo):
        for seed in range(10):
            workload = generate_workload(
                topo, np.random.default_rng(seed), ps_range=(0.01, 0.01)
            )
            for spec in workload.topics:
                assert len(spec.subscriptions) >= 1

    def test_no_self_subscription_by_default(self, topo, rng):
        workload = generate_workload(topo, rng, num_topics=10)
        for spec in workload.topics:
            assert spec.publisher not in spec.subscriber_nodes

    def test_self_subscription_opt_in(self, topo):
        found = False
        for seed in range(20):
            workload = generate_workload(
                topo,
                np.random.default_rng(seed),
                num_topics=5,
                ps_range=(0.9, 0.9),
                allow_self_subscription=True,
            )
            for spec in workload.topics:
                if spec.publisher in spec.subscriber_nodes:
                    found = True
        assert found

    def test_deadlines_are_factor_times_shortest_delay(self, topo, rng):
        workload = generate_workload(topo, rng, deadline_factor=3.0)
        for spec in workload.topics:
            for sub in spec.subscriptions:
                expected = 3.0 * topo.shortest_delay(spec.publisher, sub.node)
                assert sub.deadline == pytest.approx(expected)

    def test_subscription_rate_tracks_ps(self, topo):
        counts = []
        for seed in range(30):
            workload = generate_workload(
                topo, np.random.default_rng(seed), num_topics=10, ps_range=(0.5, 0.5)
            )
            counts.extend(len(s.subscriptions) for s in workload.topics)
        mean = float(np.mean(counts))
        assert mean == pytest.approx(0.5 * 19, rel=0.15)

    def test_phase_within_interval(self, topo, rng):
        workload = generate_workload(topo, rng, publish_interval=2.0)
        for spec in workload.topics:
            assert 0.0 <= spec.phase < 2.0

    def test_phase_zero_without_randomization(self, topo, rng):
        workload = generate_workload(topo, rng, randomize_phase=False)
        assert all(spec.phase == 0.0 for spec in workload.topics)

    def test_deterministic_given_rng_seed(self, topo):
        a = generate_workload(topo, np.random.default_rng(3))
        b = generate_workload(topo, np.random.default_rng(3))
        assert [s.publisher for s in a.topics] == [s.publisher for s in b.topics]
        assert [s.subscriber_nodes for s in a.topics] == [
            s.subscriber_nodes for s in b.topics
        ]

    def test_invalid_ps_range_rejected(self, topo, rng):
        with pytest.raises(ConfigurationError):
            generate_workload(topo, rng, ps_range=(0.6, 0.2))

    def test_invalid_deadline_factor_rejected(self, topo, rng):
        with pytest.raises(ConfigurationError):
            generate_workload(topo, rng, deadline_factor=0.5)


class TestRescaleDeadlines:
    def test_rescale_changes_only_deadlines(self, topo, rng):
        workload = generate_workload(topo, rng, deadline_factor=3.0)
        rescaled = rescale_deadlines(workload, topo, factor=6.0)
        for original, updated in zip(workload.topics, rescaled.topics):
            assert original.publisher == updated.publisher
            assert original.subscriber_nodes == updated.subscriber_nodes
            for sub_old, sub_new in zip(original.subscriptions, updated.subscriptions):
                assert sub_new.deadline == pytest.approx(2.0 * sub_old.deadline)

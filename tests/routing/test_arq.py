"""Unit tests for the hop-by-hop ARQ layer."""

import pytest

from repro.overlay.links import FrameKind
from repro.pubsub.messages import AckFrame, PacketFrame
from repro.routing.arq import ArqSender
from tests.conftest import ScriptedFailures, build_ctx, make_topology


def make_frame(msg_id=1, destinations=frozenset({1})):
    return PacketFrame.fresh(
        msg_id=msg_id,
        topic=0,
        origin=0,
        publish_time=0.0,
        destinations=destinations,
        routing_path=(0,),
    )


def ack_for(frame, acker):
    return AckFrame(msg_id=frame.msg_id, acker=acker, transfer_id=frame.transfer_id)


def make_arq(failures=None, m=1, loss_rate=0.0):
    topo = make_topology([(0, 1, 0.010)])
    ctx = build_ctx(topo, failures=failures, m=m, loss_rate=loss_rate)
    return ctx, ArqSender(ctx)


def test_ack_triggers_on_acked():
    ctx, arq = make_arq()
    outcomes = []
    frame = make_frame()
    # Echo an ACK back whenever node 1 receives the frame.
    ctx.network.attach(
        1,
        lambda sender, received: ctx.network.transmit(
            1, sender, ack_for(received, 1), FrameKind.ACK
        ),
    )
    ctx.network.attach(0, lambda sender, received: arq.handle_ack(0, sender, received))
    arq.send(0, 1, frame, outcomes.append, lambda f: outcomes.append("failed"))
    ctx.sim.run()
    assert outcomes == [frame]
    assert arq.acked == 1 and arq.failed == 0
    assert arq.in_flight == 0


def test_silence_fails_after_m_transmissions():
    failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
    ctx, arq = make_arq(failures=failures, m=3)
    outcomes = []
    frame = make_frame()
    arq.send(0, 1, frame, lambda f: outcomes.append("acked"), outcomes.append)
    ctx.sim.run()
    assert outcomes == [frame]
    assert ctx.network.stats.sent[FrameKind.DATA] == 3
    assert arq.retransmissions == 2
    assert arq.failed == 1


def test_m_one_gives_single_attempt():
    failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
    ctx, arq = make_arq(failures=failures, m=1)
    outcomes = []
    arq.send(0, 1, make_frame(), lambda f: None, outcomes.append)
    ctx.sim.run()
    assert len(outcomes) == 1
    assert ctx.network.stats.sent[FrameKind.DATA] == 1


def test_retransmission_recovers_transient_failure():
    # Link down only briefly: first attempt dies, second succeeds.
    failures = ScriptedFailures({(0, 1): [(0.0, 0.015)]})
    ctx, arq = make_arq(failures=failures, m=2)
    outcomes = []
    ctx.network.attach(
        1,
        lambda sender, received: ctx.network.transmit(
            1, sender, ack_for(received, 1), FrameKind.ACK
        ),
    )
    ctx.network.attach(0, lambda sender, received: arq.handle_ack(0, sender, received))
    arq.send(0, 1, make_frame(), outcomes.append, lambda f: outcomes.append("failed"))
    ctx.sim.run()
    assert outcomes and outcomes[0] != "failed"
    assert ctx.network.stats.sent[FrameKind.DATA] == 2


def test_unknown_ack_ignored():
    ctx, arq = make_arq()
    ack = AckFrame(msg_id=9, acker=1, transfer_id=12345)
    arq.handle_ack(0, 1, ack)  # must not raise
    assert arq.acked == 0


def test_ack_from_wrong_neighbor_ignored():
    topo = make_topology([(0, 1, 0.010), (0, 2, 0.010)])
    failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
    ctx = build_ctx(topo, failures=failures, m=1)
    arq = ArqSender(ctx)
    outcomes = []
    frame = make_frame()
    arq.send(0, 1, frame, lambda f: outcomes.append("acked"), lambda f: outcomes.append("failed"))
    # A forged ACK for the right transfer id but from node 2.
    arq.handle_ack(0, 2, ack_for(frame, 2))
    ctx.sim.run()
    assert outcomes == ["failed"]


def test_late_ack_after_failure_is_ignored():
    ctx, arq = make_arq(m=1)
    outcomes = []
    frame = make_frame()
    arq.send(0, 1, frame, lambda f: outcomes.append("acked"), lambda f: outcomes.append("failed"))
    # Let the timer expire (no receiver attached -> frame delivered nowhere).
    ctx.sim.run()
    arq.handle_ack(0, 1, ack_for(frame, 1))
    assert outcomes == ["failed"]
    assert arq.acked == 0


def test_duplicate_ack_counted_once():
    ctx, arq = make_arq()
    outcomes = []
    frame = make_frame()
    arq.send(0, 1, frame, outcomes.append, lambda f: None)
    ack = ack_for(frame, 1)
    arq.handle_ack(0, 1, ack)
    arq.handle_ack(0, 1, ack)
    assert outcomes == [frame]
    assert arq.acked == 1


def test_timeout_scales_with_link_alpha():
    # alpha = 10 ms, factor 2.0 (+1 ms slack): failure should be declared
    # at ~21 ms, well before 100 ms.
    failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
    ctx, arq = make_arq(failures=failures, m=1)
    failed_at = []
    arq.send(0, 1, make_frame(), lambda f: None, lambda f: failed_at.append(ctx.sim.now))
    ctx.sim.run()
    assert failed_at[0] == pytest.approx(0.021, abs=1e-6)

"""Property tests for the static ACK-timeout policy's memoisation.

:class:`~repro.routing.arq.MonitorTimeoutPolicy` sits on the data-plane
hot path and caches its per-direction answer until the link monitor
publishes a new estimate (``monitor.version``). The cache is only correct
if it is *transparent*: under any interleaving of queries and monitor
refreshes, the memoised answer must equal the unmemoised computation
``params.ack_timeout(monitor.estimate(src, dst).alpha)`` — and the cache
must actually cache (one estimate lookup per direction per version).
"""

from types import SimpleNamespace

from hypothesis import given, strategies as st

from repro.routing.arq import MonitorTimeoutPolicy
from repro.routing.base import ProtocolParams


class StubMonitor:
    """A monitor double: per-direction alphas plus an explicit version."""

    def __init__(self, alphas):
        self.alphas = dict(alphas)
        self.version = 0
        self.estimate_calls = 0

    def estimate(self, src, dst):
        self.estimate_calls += 1
        return SimpleNamespace(alpha=self.alphas[(src, dst)])

    def refresh(self, alphas):
        self.alphas = dict(alphas)
        self.version += 1


links = st.tuples(
    st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)
).filter(lambda pair: pair[0] != pair[1])

alpha_maps = st.dictionaries(
    links,
    st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=8,
)

params_strategy = st.builds(
    ProtocolParams,
    m=st.integers(min_value=1, max_value=3),
    ack_timeout_factor=st.floats(min_value=0.1, max_value=10.0),
    ack_timeout_slack=st.floats(min_value=0.0, max_value=0.1),
)


def _policy(monitor, params):
    return MonitorTimeoutPolicy(SimpleNamespace(monitor=monitor, params=params))


@given(alphas=alpha_maps, params=params_strategy)
def test_memoised_answer_equals_direct_computation(alphas, params):
    monitor = StubMonitor(alphas)
    policy = _policy(monitor, params)
    for (src, dst), alpha in alphas.items():
        expected = params.ack_timeout(alpha)
        # First query computes, second must serve the identical cached value.
        assert policy.timeout(src, dst) == expected
        assert policy.timeout(src, dst) == expected


@given(alphas=alpha_maps, params=params_strategy, repeats=st.integers(2, 5))
def test_cache_hits_do_not_requery_the_monitor(alphas, params, repeats):
    monitor = StubMonitor(alphas)
    policy = _policy(monitor, params)
    for _ in range(repeats):
        for src, dst in alphas:
            policy.timeout(src, dst)
    # Exactly one estimate() per direction, however many queries.
    assert monitor.estimate_calls == len(alphas)


@given(
    first=alpha_maps,
    second=alpha_maps,
    params=params_strategy,
)
def test_version_bump_invalidates_the_cache(first, second, params):
    # Both alpha maps must cover the same directions for the comparison.
    directions = set(first)
    second = {key: second.get(key, 0.5) for key in directions}
    monitor = StubMonitor(first)
    policy = _policy(monitor, params)
    for src, dst in directions:
        assert policy.timeout(src, dst) == params.ack_timeout(first[(src, dst)])
    monitor.refresh(second)
    for src, dst in directions:
        assert policy.timeout(src, dst) == params.ack_timeout(second[(src, dst)])


@given(alphas=alpha_maps, params=params_strategy)
def test_refresh_without_change_keeps_answers_stable(alphas, params):
    monitor = StubMonitor(alphas)
    policy = _policy(monitor, params)
    before = {key: policy.timeout(*key) for key in alphas}
    monitor.refresh(alphas)  # same values, new version: cache must rebuild
    after = {key: policy.timeout(*key) for key in alphas}
    assert before == after


@given(alphas=alpha_maps, params=params_strategy)
def test_samples_are_ignored_by_the_static_policy(alphas, params):
    monitor = StubMonitor(alphas)
    policy = _policy(monitor, params)
    before = {key: policy.timeout(*key) for key in alphas}
    for src, dst in alphas:
        policy.on_sample(src, dst, 123.456)
    after = {key: policy.timeout(*key) for key in alphas}
    assert before == after

"""Property-based ARQ retransmission tests under fuzzed ACK-loss schedules.

Hypothesis draws adversarial ACK-loss schedules (which ACKs die at the
transport seam, in seam order) and the properties assert the ARQ
contract holds under every one of them:

* every unacknowledged copy is eventually retransmitted (within the
  m-budget) or abandoned — nothing stays in flight;
* every ACK timer settles exactly once (sanitizer-checked: started ==
  settled, no orphans, no double settlement);
* ACK loss never loses *data* — the delivered-pair set stays complete;
* latent-timer elision is observationally equivalent to eager timers
  under the same loss schedule (same deliveries, same ARQ counters, same
  kernel event count).

The worlds are built directly (not via ``build_ctx``) because elision
requires the network's fast-send path, which a transmission trace
disables.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import probes as _probes
from repro import sanity as _sanity
from repro.core.forwarding import DcrdStrategy
from repro.metrics.collector import MetricsCollector
from repro.overlay.links import FrameKind, OverlayNetwork
from repro.overlay.monitor import LinkMonitor
from repro.pubsub.broker import BrokerRuntime
from repro.pubsub.messages import next_message_id, reset_message_ids
from repro.routing.base import ProtocolParams, RuntimeContext
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

from tests.conftest import make_topology, single_topic_workload

#: Diamond world: 0-1-3 is the fast path, 0-2-3 the alternative, so a
#: drained m-budget exercises failover and §III-D bounces too.
_EDGES = [(0, 1, 0.010), (1, 3, 0.010), (0, 2, 0.020), (2, 3, 0.020)]
_SUBSCRIBERS = [(3, 5.0), (2, 5.0)]


class AckLossSchedule:
    """Drop the i-th ACK crossing the seam iff ``drops[i]`` is True."""

    def __init__(self, drops):
        self.drops = list(drops)
        self.seen = 0
        self.dropped = 0

    def __call__(self, src, dst, kind, frame):
        if kind is not FrameKind.ACK:
            return False
        index = self.seen
        self.seen += 1
        if index < len(self.drops) and self.drops[index]:
            self.dropped += 1
            return True
        return False


class TimeoutLedger:
    """Records every ack_timeout event (attempts, will_retry)."""

    def __init__(self):
        self.events = []

    def probe_handlers(self):
        return {"ack_timeout": self._on_timeout}

    def _on_timeout(self, t, src, dst, frame, attempts, will_retry):
        self.events.append((frame.transfer_id, attempts, will_retry))


def run_world(drops, m=2, elide=False, sanitize=False, publishes=2):
    """One DCRD run over the diamond with the given ACK-loss schedule."""
    reset_message_ids()
    topology = make_topology(_EDGES)
    sim = Simulator()
    streams = RandomStreams(17)
    network = OverlayNetwork(sim, topology, streams, loss_rate=0.0)
    schedule = AckLossSchedule(drops)
    network.install_fault_filter(schedule)
    monitor = LinkMonitor(topology, network, streams, mode="analytic")
    workload = single_topic_workload(0, _SUBSCRIBERS)
    ctx = RuntimeContext(
        sim=sim,
        topology=topology,
        network=network,
        monitor=monitor,
        workload=workload,
        metrics=MetricsCollector(),
        streams=streams,
        params=ProtocolParams(m=m),
    )
    strategy = DcrdStrategy(ctx)
    strategy.setup()
    brokers = [BrokerRuntime(node, ctx, strategy) for node in topology.nodes]
    assert brokers
    if elide:
        strategy.arq.enable_timer_elision()
    sanitizer = _sanity.Sanitizer() if sanitize else None
    ledger = TimeoutLedger()
    spec = workload.topic(0)
    deadlines = {sub.node: sub.deadline for sub in spec.subscriptions}

    def publish_one():
        msg_id = next_message_id()
        ctx.metrics.expect(msg_id, 0, sim.now, deadlines)
        strategy.publish(spec, msg_id)

    for i in range(publishes):
        sim.schedule(i * 1.0, publish_one)
    _sanity.install(sanitizer)
    _probes.attach(ledger)
    try:
        try:
            sim.run(until=120.0)
        finally:
            _sanity.uninstall()
        if sanitizer is not None:
            sanitizer.finish(ctx.metrics, sim.now)
    finally:
        _probes.detach(ledger)
    delivered = frozenset(
        (o.msg_id, o.subscriber) for o in ctx.metrics.outcomes() if o.delivered
    )
    return {
        "delivered": delivered,
        "expected": ctx.metrics.expected_deliveries,
        "acked": strategy.arq.acked,
        "failed": strategy.arq.failed,
        "retransmissions": strategy.arq.retransmissions,
        "timers_cancelled": strategy.arq.timers_cancelled,
        "timers_elided": strategy.arq.timers_elided,
        "in_flight": strategy.arq.in_flight,
        "events_processed": sim.processed_events,
        "timeouts": tuple(ledger.events),
        "acks_dropped": schedule.dropped,
        "sanitizer": sanitizer,
    }


drops_strategy = st.lists(st.booleans(), min_size=0, max_size=40)


@settings(max_examples=25, deadline=None)
@given(drops=drops_strategy, m=st.integers(min_value=1, max_value=3))
def test_every_unacked_copy_retransmits_or_abandons(drops, m):
    result = run_world(drops, m=m, sanitize=True)
    # Nothing may remain in flight: every copy settled one way or the other.
    assert result["in_flight"] == 0
    # Each timeout either retransmitted (within budget) or abandoned the
    # copy; the ARQ counters must account for every single one.
    retries = sum(1 for _, _, will_retry in result["timeouts"] if will_retry)
    abandons = sum(1 for _, _, will_retry in result["timeouts"] if not will_retry)
    assert result["retransmissions"] == retries
    assert result["failed"] == abandons
    # A timeout that retries must have had budget left; one that abandons
    # must have exhausted it exactly.
    for _, attempts, will_retry in result["timeouts"]:
        assert will_retry == (attempts < m)
    # ACK loss must never lose data: dedup absorbs the retransmits and
    # every (message, subscriber) pair still gets delivered.
    assert len(result["delivered"]) == result["expected"]


@settings(max_examples=25, deadline=None)
@given(drops=drops_strategy)
def test_timers_settle_exactly_once(drops):
    result = run_world(drops, m=2, sanitize=True)
    perf = result["sanitizer"].perf_counters()
    assert perf["sanity.violations"] == 0
    assert perf["sanity.timers_started"] == perf["sanity.timers_settled"]
    # Settlements decompose exactly into ACK-cancellations and fired
    # timeouts — no timer settles twice, none is double-counted.
    assert perf["sanity.timers_started"] == result["timers_cancelled"] + len(
        result["timeouts"]
    )


@settings(max_examples=25, deadline=None)
@given(drops=drops_strategy, m=st.integers(min_value=1, max_value=3))
def test_latent_timer_elision_equivalent_to_eager(drops, m):
    eager = run_world(drops, m=m, elide=False)
    elided = run_world(drops, m=m, elide=True)
    # The optimisation must be observationally invisible: same deliveries,
    # same settlement counters, and the same kernel event count (elided
    # timers reserve their (time, seq) keys, so the schedule is identical).
    for key in (
        "delivered",
        "acked",
        "failed",
        "retransmissions",
        "timers_cancelled",
        "timeouts",
        "events_processed",
    ):
        assert eager[key] == elided[key], key
    assert eager["timers_elided"] == 0
    assert elided["timers_elided"] >= 0


def test_elision_engages_without_ack_loss():
    """Guard against the equivalence property passing vacuously."""
    result = run_world([], m=2, elide=True)
    assert result["timers_elided"] > 0
    assert result["in_flight"] == 0

"""Tests for the strategy base: protocol params and shared helpers."""

import pytest

from repro.pubsub.messages import PacketFrame
from repro.routing.base import ProtocolParams, RoutingStrategy
from repro.util.errors import ConfigurationError
from tests.conftest import build_ctx, make_topology


class TestProtocolParams:
    def test_defaults_match_paper(self):
        params = ProtocolParams()
        assert params.m == 1
        assert params.ack_timeout_factor == 2.0

    def test_ack_timeout_formula(self):
        params = ProtocolParams(ack_timeout_factor=2.0, ack_timeout_slack=0.001)
        assert params.ack_timeout(0.010) == pytest.approx(0.021)

    def test_invalid_m_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(m=0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(ack_timeout_factor=0.0)

    def test_negative_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(ack_timeout_slack=-0.1)

    def test_frozen(self):
        params = ProtocolParams()
        with pytest.raises(Exception):
            params.m = 3


class _MinimalStrategy(RoutingStrategy):
    name = "minimal"

    def publish(self, spec, msg_id):  # pragma: no cover
        raise NotImplementedError

    def handle_data(self, node, sender, frame):  # pragma: no cover
        raise NotImplementedError


class TestGiveUp:
    def test_give_up_marks_every_destination(self):
        topo = make_topology([(0, 1, 0.010)])
        ctx = build_ctx(topo)
        strategy = _MinimalStrategy(ctx)
        ctx.metrics.expect(1, 0, 0.0, {0: 1.0, 1: 1.0})
        frame = PacketFrame.fresh(
            msg_id=1,
            topic=0,
            origin=0,
            publish_time=0.0,
            destinations=frozenset({0, 1}),
            routing_path=(),
        )
        strategy.give_up(frame)
        assert ctx.metrics.outcome(1, 0).gave_up
        assert ctx.metrics.outcome(1, 1).gave_up

    def test_default_hooks_are_noops(self):
        topo = make_topology([(0, 1, 0.010)])
        ctx = build_ctx(topo)
        strategy = _MinimalStrategy(ctx)
        strategy.setup()
        strategy.on_monitor_refresh()
        strategy.handle_ack(0, 1, object())

"""Unit tests for the Multipath baseline."""

import pytest

from repro.overlay.links import FrameKind
from repro.routing.multipath import MultipathStrategy
from repro.routing.paths import shared_links
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def diamond():
    return make_topology(
        [
            (0, 1, 0.010),
            (1, 3, 0.010),
            (0, 2, 0.020),
            (2, 3, 0.020),
        ]
    )


def run_once(topo, workload, failures=None, m=1, until=5.0):
    ctx = build_ctx(topo, workload, failures=failures, m=m)
    strategy = MultipathStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, spec.topic, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx, strategy


class TestPathSelection:
    def test_two_disjoint_paths_chosen(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = MultipathStrategy(ctx)
        strategy.setup()
        primary, secondary = strategy.paths_for(0, 3)
        assert primary == [0, 1, 3]
        assert shared_links(primary, secondary) == 0

    def test_degenerate_topology_reuses_primary(self):
        topo = make_topology([(0, 1, 0.010)])
        workload = single_topic_workload(0, [(1, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = MultipathStrategy(ctx)
        strategy.setup()
        primary, secondary = strategy.paths_for(0, 1)
        assert primary == secondary == [0, 1]


class TestForwarding:
    def test_duplicates_arrive_via_both_paths(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload)
        outcome = ctx.metrics.outcome(1, 3)
        assert outcome.delivered
        assert outcome.duplicates == 1
        # First copy takes the fast path.
        assert outcome.delay == pytest.approx(0.020)

    def test_single_copy_when_paths_degenerate(self):
        topo = make_topology([(0, 1, 0.010)])
        workload = single_topic_workload(0, [(1, 1.0)])
        ctx, _ = run_once(topo, workload)
        outcome = ctx.metrics.outcome(1, 1)
        assert outcome.delivered and outcome.duplicates == 0

    def test_survives_failure_of_primary_path(self):
        topo = diamond()
        failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 3)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.040)  # secondary path

    def test_fails_when_both_paths_broken(self):
        topo = diamond()
        failures = ScriptedFailures(
            {(0, 1): [(0.0, 100.0)], (0, 2): [(0.0, 100.0)]}
        )
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, strategy = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 3)
        assert not outcome.delivered
        assert outcome.gave_up
        assert strategy.abandoned == 2

    def test_traffic_doubles_against_tree(self):
        topo = diamond()
        workload = single_topic_workload(0, [(3, 1.0)])
        ctx, _ = run_once(topo, workload)
        data = [t for t in ctx.network.transmissions if t.kind == FrameKind.DATA]
        assert len(data) == 4  # two 2-hop copies

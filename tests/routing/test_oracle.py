"""Unit tests for the clairvoyant ORACLE baseline."""

import pytest

from repro.overlay.links import FrameKind
from repro.routing.oracle import OracleStrategy, extract_path, time_dependent_paths
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def triangle():
    return make_topology([(0, 1, 0.010), (1, 2, 0.010), (0, 2, 0.050)])


def run_once(topo, workload, failures=None, until=5.0, loss_rate=0.0, at=0.0):
    ctx = build_ctx(topo, workload, failures=failures, loss_rate=loss_rate)
    strategy = OracleStrategy(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]

    def publish():
        ctx.metrics.expect(
            1, spec.topic, ctx.sim.now, {s.node: s.deadline for s in spec.subscriptions}
        )
        strategy.publish(spec, msg_id=1)

    ctx.sim.schedule(at, publish)
    ctx.sim.run(until=until)
    return ctx, strategy


class TestTimeDependentSearch:
    def test_no_failures_matches_dijkstra(self):
        topo = triangle()
        arrival, parent = time_dependent_paths(topo, None, 0, start_time=0.0)
        assert arrival[2] == pytest.approx(0.020)
        assert extract_path(parent, 0, 2) == [0, 1, 2]

    def test_failed_link_forces_detour(self):
        topo = triangle()
        failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
        arrival, parent = time_dependent_paths(topo, failures, 0, start_time=0.0)
        assert extract_path(parent, 0, 2) == [0, 2]
        assert arrival[2] == pytest.approx(0.050)

    def test_availability_checked_at_departure_instant(self):
        # Link 1-2 fails only during [0, 0.005); departure from node 1
        # happens at t = 0.010, so the fast path is usable.
        topo = triangle()
        failures = ScriptedFailures({(1, 2): [(0.0, 0.005)]})
        _, parent = time_dependent_paths(topo, failures, 0, start_time=0.0)
        assert extract_path(parent, 0, 2) == [0, 1, 2]

    def test_unreachable_returns_none(self):
        topo = make_topology([(0, 1, 0.010)])
        failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
        _, parent = time_dependent_paths(topo, failures, 0, start_time=0.0)
        assert extract_path(parent, 0, 1) is None

    def test_source_path_is_trivial(self):
        assert extract_path({}, 0, 0) == [0]


class TestOracleStrategy:
    def test_delivers_on_shortest_path(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload)
        assert ctx.metrics.outcome(1, 2).delay == pytest.approx(0.020)

    def test_avoids_failed_link(self):
        topo = triangle()
        failures = ScriptedFailures({(0, 1): [(0.0, 1.0)]})
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 2)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.050)

    def test_drops_when_no_feasible_path(self):
        topo = make_topology([(0, 1, 0.010)])
        failures = ScriptedFailures({(0, 1): [(0.0, 100.0)]})
        workload = single_topic_workload(0, [(1, 1.0)])
        ctx, strategy = run_once(topo, workload, failures=failures)
        assert not ctx.metrics.outcome(1, 1).delivered
        assert strategy.infeasible == 1

    def test_immune_to_random_loss(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload, loss_rate=1.0)
        assert ctx.metrics.outcome(1, 2).delivered

    def test_sends_no_acks(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload)
        assert not any(t.kind == FrameKind.ACK for t in ctx.network.transmissions)

    def test_shared_prefix_sends_one_copy(self):
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.010), (1, 3, 0.010)])
        workload = single_topic_workload(0, [(2, 1.0), (3, 1.0)])
        ctx, _ = run_once(topo, workload)
        first_hop = [
            t
            for t in ctx.network.transmissions
            if t.kind == FrameKind.DATA and t.src == 0 and t.dst == 1
        ]
        assert len(first_hop) == 1
        assert ctx.metrics.outcome(1, 2).delivered
        assert ctx.metrics.outcome(1, 3).delivered

    def test_uses_future_knowledge_not_just_present(self):
        # At publish time (t=0.5) link 1-2 is up, but it will be down when
        # the packet would reach node 1 (t=0.51); the oracle must route
        # around it in advance.
        topo = triangle()
        failures = ScriptedFailures({(1, 2): [(0.505, 2.0)]})
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(topo, workload, failures=failures, at=0.5)
        outcome = ctx.metrics.outcome(1, 2)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.050)

    def test_avoids_crashed_relay_node(self):
        # Node 1 (the fast relay) is down for the first second; the oracle
        # must route via the slow direct link instead.
        from repro.overlay.failures import NodeFailureSchedule
        from repro.routing.oracle import time_dependent_paths

        topo = triangle()
        node_failures = NodeFailureSchedule(
            topo, 1.0, seed=1, protected_nodes=frozenset({0, 2})
        )
        _, parent = time_dependent_paths(
            topo, None, 0, start_time=0.0, node_failures=node_failures
        )
        assert extract_path(parent, 0, 2) == [0, 2]

    def test_crashed_source_is_unreachable_everywhere(self):
        from repro.overlay.failures import NodeFailureSchedule
        from repro.routing.oracle import time_dependent_paths

        topo = triangle()
        node_failures = NodeFailureSchedule(
            topo, 1.0, seed=1, protected_nodes=frozenset({1, 2})
        )
        arrival, parent = time_dependent_paths(
            topo, None, 0, start_time=0.0, node_failures=node_failures
        )
        assert arrival == {} and parent == {}

    def test_publisher_self_subscription(self):
        topo = triangle()
        workload = single_topic_workload(0, [(0, 1.0), (2, 1.0)])
        ctx, _ = run_once(topo, workload)
        assert ctx.metrics.outcome(1, 0).delay == 0.0

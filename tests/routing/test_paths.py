"""Unit tests for path utilities."""

import pytest

from repro.routing.paths import (
    build_path_tree,
    k_shortest_delay_paths,
    least_overlapping_path,
    path_delay,
    path_links,
    shared_links,
)
from repro.util.errors import RoutingError
from tests.conftest import make_topology


@pytest.fixture
def diamond():
    # 0 -> 3 via 1 (fast) or via 2 (slow), plus a long direct link.
    return make_topology(
        [
            (0, 1, 0.010),
            (1, 3, 0.010),
            (0, 2, 0.020),
            (2, 3, 0.020),
            (0, 3, 0.060),
        ]
    )


def test_path_delay_sums_links(diamond):
    assert path_delay(diamond, [0, 1, 3]) == pytest.approx(0.020)
    assert path_delay(diamond, [0, 2, 3]) == pytest.approx(0.040)


def test_path_links_canonical(diamond):
    assert path_links([3, 1, 0]) == {(1, 3), (0, 1)}


def test_shared_links_counts_overlap(diamond):
    assert shared_links([0, 1, 3], [0, 1, 3]) == 2
    assert shared_links([0, 1, 3], [0, 2, 3]) == 0


def test_k_shortest_sorted_by_delay(diamond):
    paths = k_shortest_delay_paths(diamond, 0, 3, k=3)
    delays = [path_delay(diamond, p) for p in paths]
    assert delays == sorted(delays)
    assert paths[0] == [0, 1, 3]


def test_k_shortest_returns_at_most_k(diamond):
    assert len(k_shortest_delay_paths(diamond, 0, 3, k=2)) == 2


def test_k_shortest_handles_fewer_paths_than_k():
    topo = make_topology([(0, 1, 0.010)])
    assert k_shortest_delay_paths(topo, 0, 1, k=5) == [[0, 1]]


def test_k_shortest_same_node():
    topo = make_topology([(0, 1, 0.010)])
    assert k_shortest_delay_paths(topo, 0, 0, k=3) == [[0]]


def test_least_overlapping_prefers_disjoint(diamond):
    candidates = k_shortest_delay_paths(diamond, 0, 3, k=5)
    primary = candidates[0]
    secondary = least_overlapping_path(diamond, primary, candidates)
    assert shared_links(primary, secondary) == 0
    assert secondary != primary


def test_least_overlapping_falls_back_to_primary():
    topo = make_topology([(0, 1, 0.010)])
    primary = [0, 1]
    assert least_overlapping_path(topo, primary, [primary]) == primary


def test_least_overlapping_requires_candidates(diamond):
    with pytest.raises(RoutingError):
        least_overlapping_path(diamond, [0, 1, 3], [])


def test_least_overlapping_tie_breaks_to_earlier_candidate(diamond):
    # Both alternatives share zero links with the primary; the earlier
    # (shorter-delay) candidate wins.
    primary = [0, 1, 3]
    candidates = [primary, [0, 2, 3], [0, 3]]
    chosen = least_overlapping_path(diamond, primary, candidates)
    assert chosen == [0, 2, 3]


def test_build_path_tree_next_hops():
    table = build_path_tree({3: [0, 1, 3], 4: [0, 1, 4]})
    assert table[0] == {3: 1, 4: 1}
    assert table[1] == {3: 3, 4: 4}


def test_build_path_tree_empty():
    assert build_path_tree({}) == {}

"""Property tests of structural invariants in the routing layers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.overlay.failures import FailureSchedule
from repro.overlay.topology import full_mesh, random_regular
from repro.pubsub.topics import generate_workload
from repro.routing.multipath import MultipathStrategy
from repro.routing.oracle import extract_path, time_dependent_paths
from repro.routing.paths import path_delay, path_links
from repro.routing.trees import DTreeStrategy, RTreeStrategy
from tests.conftest import build_ctx

seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_oracle_arrivals_equal_path_traversal_times(seed):
    """Earliest-arrival labels must be reproducible by walking the path."""
    rng = np.random.default_rng(seed)
    topo = random_regular(10, 4, rng)
    failures = FailureSchedule(topo, 0.15, seed=seed)
    start = float(rng.uniform(0.0, 20.0))
    arrival, parent = time_dependent_paths(topo, failures, 0, start)
    for target, label in arrival.items():
        path = extract_path(parent, 0, target)
        assert path is not None
        time = start
        for u, v in zip(path, path[1:]):
            assert not failures.is_failed(u, v, time)  # link usable at departure
            time += topo.delay(u, v)
        assert time == pytest.approx(label)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_oracle_without_failures_matches_dijkstra(seed):
    rng = np.random.default_rng(seed)
    topo = random_regular(12, 4, rng)
    arrival, _ = time_dependent_paths(topo, None, 0, start_time=0.0)
    for target in topo.nodes:
        assert arrival[target] == pytest.approx(topo.shortest_delay(0, target))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=seeds)
def test_tree_tables_route_every_pair_loop_free(seed):
    rng = np.random.default_rng(seed)
    topo = random_regular(12, 4, rng)
    workload = generate_workload(topo, rng, num_topics=4)
    ctx = build_ctx(topo, workload)
    for strategy_cls in (RTreeStrategy, DTreeStrategy):
        strategy = strategy_cls(ctx)
        strategy.setup()
        for spec in workload.topics:
            for sub in spec.subscriptions:
                # Walking the next-hop table must reach the subscriber
                # without revisiting a node.
                node, visited = spec.publisher, set()
                while node != sub.node:
                    assert node not in visited
                    visited.add(node)
                    node = strategy.next_hop(spec.topic, node, sub.node)
                assert len(visited) <= topo.num_nodes


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=seeds)
def test_multipath_paths_are_simple_and_start_end_correctly(seed):
    rng = np.random.default_rng(seed)
    topo = random_regular(12, 4, rng)
    workload = generate_workload(topo, rng, num_topics=3)
    ctx = build_ctx(topo, workload)
    strategy = MultipathStrategy(ctx)
    strategy.setup()
    for spec in workload.topics:
        for sub in spec.subscriptions:
            primary, secondary = strategy.paths_for(spec.topic, sub.node)
            for path in (primary, secondary):
                assert path[0] == spec.publisher
                assert path[-1] == sub.node
                assert len(set(path)) == len(path)  # simple path
                for u, v in zip(path, path[1:]):
                    assert topo.has_edge(u, v)
            # The primary is delay-minimal.
            assert path_delay(topo, primary) == pytest.approx(
                topo.shortest_delay(spec.publisher, sub.node)
            )


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_rtree_paths_are_hop_minimal(seed):
    rng = np.random.default_rng(seed)
    topo = full_mesh(8, rng)
    workload = generate_workload(topo, rng, num_topics=3)
    ctx = build_ctx(topo, workload)
    strategy = RTreeStrategy(ctx)
    strategy.setup()
    for spec in workload.topics:
        for sub in spec.subscriptions:
            hops = 0
            node = spec.publisher
            while node != sub.node:
                node = strategy.next_hop(spec.topic, node, sub.node)
                hops += 1
            assert hops == topo.shortest_hops(spec.publisher, sub.node)

"""Unit tests for the R-Tree / D-Tree baselines."""

import pytest

from repro.routing.trees import DTreeStrategy, RTreeStrategy
from tests.conftest import (
    ScriptedFailures,
    attach_brokers,
    build_ctx,
    make_topology,
    single_topic_workload,
)


def triangle():
    # Direct link 0-2 is one hop but slow; 0-1-2 is two hops but fast.
    return make_topology([(0, 1, 0.010), (1, 2, 0.010), (0, 2, 0.050)])


def run_once(strategy_cls, topo, workload, failures=None, m=1, until=5.0):
    ctx = build_ctx(topo, workload, failures=failures, m=m)
    strategy = strategy_cls(ctx)
    strategy.setup()
    attach_brokers(ctx, strategy)
    spec = workload.topics[0]
    ctx.metrics.expect(1, spec.topic, 0.0, {s.node: s.deadline for s in spec.subscriptions})
    strategy.publish(spec, msg_id=1)
    ctx.sim.run(until=until)
    return ctx, strategy


class TestTreeConstruction:
    def test_rtree_uses_fewest_hops(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = RTreeStrategy(ctx)
        strategy.setup()
        assert strategy.next_hop(0, 0, 2) == 2  # direct link

    def test_dtree_uses_lowest_delay(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = DTreeStrategy(ctx)
        strategy.setup()
        assert strategy.next_hop(0, 0, 2) == 1  # two fast hops

    def test_tree_edges_cover_all_subscribers(self):
        topo = triangle()
        workload = single_topic_workload(0, [(1, 1.0), (2, 1.0)])
        ctx = build_ctx(topo, workload)
        strategy = DTreeStrategy(ctx)
        strategy.setup()
        edges = strategy.tree_edges(0)
        assert (0, 1) in edges


class TestTreeForwarding:
    def test_delivers_on_healthy_network(self):
        topo = triangle()
        workload = single_topic_workload(0, [(1, 1.0), (2, 1.0)])
        ctx, _ = run_once(DTreeStrategy, topo, workload)
        assert ctx.metrics.outcome(1, 1).delivered
        assert ctx.metrics.outcome(1, 2).delivered

    def test_delivery_time_matches_path_delay(self):
        topo = triangle()
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, _ = run_once(DTreeStrategy, topo, workload)
        assert ctx.metrics.outcome(1, 2).delay == pytest.approx(0.020)

    def test_shared_subtree_sends_one_copy(self):
        # Both subscribers behind node 1: exactly one frame on link 0-1.
        topo = make_topology([(0, 1, 0.010), (1, 2, 0.010), (1, 3, 0.010)])
        workload = single_topic_workload(0, [(2, 1.0), (3, 1.0)])
        ctx, _ = run_once(DTreeStrategy, topo, workload)
        from repro.overlay.links import FrameKind

        first_hop = [
            t
            for t in ctx.network.transmissions
            if t.kind == FrameKind.DATA and t.src == 0 and t.dst == 1
        ]
        assert len(first_hop) == 1

    def test_no_reroute_on_failure(self):
        # The D-Tree path 0-1-2 is broken at link 1-2; the direct 0-2 link
        # is healthy but the tree must NOT use it.
        topo = triangle()
        failures = ScriptedFailures({(1, 2): [(0.0, 100.0)]})
        workload = single_topic_workload(0, [(2, 1.0)])
        ctx, strategy = run_once(DTreeStrategy, topo, workload, failures=failures)
        outcome = ctx.metrics.outcome(1, 2)
        assert not outcome.delivered
        assert outcome.gave_up
        assert strategy.abandoned == 1

    def test_retransmission_budget_helps_on_flaky_link(self):
        topo = make_topology([(0, 1, 0.010)])
        failures = ScriptedFailures({(0, 1): [(0.0, 0.015)]})
        workload = single_topic_workload(0, [(1, 1.0)])
        ctx, _ = run_once(DTreeStrategy, topo, workload, failures=failures, m=2)
        assert ctx.metrics.outcome(1, 1).delivered

    def test_publisher_self_subscription_delivered_immediately(self):
        topo = triangle()
        workload = single_topic_workload(0, [(0, 1.0), (2, 1.0)])
        ctx, _ = run_once(DTreeStrategy, topo, workload)
        assert ctx.metrics.outcome(1, 0).delay == 0.0

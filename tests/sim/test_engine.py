"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.util.errors import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
    assert sim.now == 2.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_zero_delay_event_fires_after_already_scheduled_now_events():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.schedule(1.0, fired.append, "sibling")
    sim.run()
    assert fired == ["outer", "sibling", "inner"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0
    # The late event survives for a later run.
    sim.run()
    assert fired == ["in", "out"]


def test_event_exactly_at_until_fires():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(3.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs"] and sim.now == 3.0


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_clear_drops_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.clear()
    sim.run()
    assert fired == [] and sim.pending_events == 0


def test_pending_and_processed_counters():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    event.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.processed_events == 1


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_max_events_executes_exactly_the_budget():
    """The guard trips before event max_events + 1, not after it."""
    sim = Simulator()
    fired = []

    def forever():
        fired.append(sim.now)
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=7)
    assert len(fired) == 7


def test_max_events_allows_schedule_of_exactly_that_size():
    """A finite schedule of exactly max_events events finishes cleanly."""
    sim = Simulator()
    fired = []
    for index in range(5):
        sim.schedule(float(index), fired.append, index)
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_pending_events_through_cancel_fire_and_clear():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sim.pending_events == 4
    events[0].cancel()
    assert sim.pending_events == 3
    sim.step()  # pops the cancelled event and fires the first live one
    assert sim.pending_events == 2
    sim.clear()
    assert sim.pending_events == 0


def test_cancel_after_fire_is_a_noop():
    """Cancelling an already-fired handle must not corrupt the counter."""
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, lambda: None)
    sim.step()
    assert fired == ["x"]
    event.cancel()
    event.cancel()
    assert sim.pending_events == 1


def test_cancel_after_clear_is_a_noop():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.clear()
    event.cancel()
    assert sim.pending_events == 0


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0

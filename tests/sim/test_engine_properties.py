"""Property tests of the event kernel's ordering guarantees."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=60,
)


@given(delays=delays)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=delays)
def test_equal_times_preserve_submission_order(delays):
    sim = Simulator()
    fired = []
    # Pin all events to the same instant, labelled by submission index.
    for index, _ in enumerate(delays):
        sim.schedule(1.0, fired.append, index)
    sim.run()
    assert fired == list(range(len(delays)))


@given(delays=delays, cancel_mask=st.data())
def test_cancellation_is_exact(delays, cancel_mask):
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(delay, fired.append, index)
        for index, delay in enumerate(delays)
    ]
    cancelled = set()
    for index, event in enumerate(events):
        if cancel_mask.draw(st.booleans()):
            event.cancel()
            cancelled.add(index)
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled


@settings(deadline=None)
@given(
    delays=delays,
    until=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_run_until_is_a_clean_partition(delays, until):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run(until=until)
    early = list(fired)
    sim.run()
    assert all(d <= until for d in early)
    assert sorted(fired) == sorted(delays)

"""Kernel fast-path units: tombstone compaction and ``schedule_fire``.

Compaction is a pure space optimisation — it removes only entries whose
events can never fire and re-heapifies the unchanged live ``(time, seq)``
keys — so every test here checks both the perf counters *and* that the
observable firing order is untouched.
"""

import pytest

from repro.sim.engine import Simulator
from repro.util.errors import SimulationError


@pytest.fixture
def aggressive_sim(monkeypatch):
    """A simulator whose every cancellation triggers a compaction pass."""
    monkeypatch.setattr(Simulator, "compaction_ratio", 0.5)
    monkeypatch.setattr(Simulator, "compaction_min", 2)
    return Simulator()


# ----------------------------------------------------------------------
# Tombstone compaction
# ----------------------------------------------------------------------
def test_compaction_reaps_cancelled_entries(aggressive_sim):
    sim = aggressive_sim
    keep = [sim.schedule(float(i), lambda: None) for i in range(4)]
    drop = [sim.schedule(10.0 + i, lambda: None) for i in range(8)]
    assert len(sim._heap) == 12

    for event in drop:
        event.cancel()

    # min=2 and ratio=0.5: the threshold trips partway through the loop.
    assert sim.heap_compactions >= 1
    assert sim.tombstones_reaped >= 2
    assert sim.pending_events == 4
    # Reaped + still-pending tombstones account for every cancellation:
    # only sub-threshold stragglers may remain in the heap.
    assert len(sim._heap) == 4 + sim._tombstones
    assert sim.tombstones_reaped + sim._tombstones == len(drop)
    del keep


def test_compaction_preserves_firing_order(monkeypatch):
    """Same schedule, compaction forced vs disabled: identical pop order."""

    def trace(ratio, minimum):
        monkeypatch.setattr(Simulator, "compaction_ratio", ratio)
        monkeypatch.setattr(Simulator, "compaction_min", minimum)
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(delay, fired.append, (delay, i))
            for i, delay in enumerate([3.0, 1.0, 2.0, 1.0, 5.0, 4.0, 2.0, 0.5])
        ]
        for index in (0, 3, 5, 6):
            events[index].cancel()
        sim.run()
        return fired

    assert trace(0.01, 1) == trace(None, 64)


def test_compaction_counter_threshold(monkeypatch):
    """No pass runs below ``compaction_min`` tombstones."""
    monkeypatch.setattr(Simulator, "compaction_ratio", 0.01)
    monkeypatch.setattr(Simulator, "compaction_min", 5)
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    for event in events[:4]:
        event.cancel()
    assert sim.heap_compactions == 0
    events[4].cancel()
    assert sim.heap_compactions == 1
    assert sim.tombstones_reaped == 5
    assert sim.pending_events == 5


def test_cancel_after_compaction_is_a_noop(aggressive_sim):
    """A handle whose entry was already reaped must not corrupt counters."""
    sim = aggressive_sim
    survivor = sim.schedule(1.0, lambda: None)
    doomed = [sim.schedule(2.0, lambda: None) for _ in range(4)]
    for event in doomed:
        event.cancel()
    assert sim.heap_compactions >= 1
    live_before = sim.pending_events
    for event in doomed:
        event.cancel()  # second cancel: entry long gone from the heap
    assert sim.pending_events == live_before == 1
    sim.run()
    assert sim.processed_events == 1
    assert survivor.fired


def test_legacy_mode_never_compacts(monkeypatch):
    monkeypatch.setattr(Simulator, "compaction_ratio", None)
    monkeypatch.setattr(Simulator, "compaction_min", 1)
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(20)]
    for event in events:
        event.cancel()
    assert sim.heap_compactions == 0
    assert len(sim._heap) == 20  # tombstones pinned until they surface
    sim.run()
    assert sim.processed_events == 0
    assert sim._heap == []


# ----------------------------------------------------------------------
# schedule_fire (fire-and-forget entries)
# ----------------------------------------------------------------------
def test_schedule_fire_interleaves_fifo_with_schedule():
    """Both entry shapes share one seq counter, so ties stay FIFO."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "event-a")
    sim.schedule_fire(1.0, fired.append, "fire-b")
    sim.schedule(1.0, fired.append, "event-c")
    sim.schedule_fire(0.5, fired.append, "fire-d")
    sim.run()
    assert fired == ["fire-d", "event-a", "fire-b", "event-c"]
    assert sim.processed_events == 4
    assert sim.pending_events == 0


def test_schedule_fire_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fire(-0.1, lambda: None)


def test_schedule_fire_entries_survive_compaction(aggressive_sim):
    """Bare ``(time, seq, callback, args)`` entries are always live."""
    sim = aggressive_sim
    fired = []
    for i in range(4):
        sim.schedule_fire(1.0 + i, fired.append, i)
    doomed = [sim.schedule(10.0, lambda: None) for _ in range(4)]
    for event in doomed:
        event.cancel()
    assert sim.heap_compactions >= 1
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_clear_discards_fire_and_forget_entries():
    sim = Simulator()
    fired = []
    sim.schedule_fire(1.0, fired.append, "x")
    handle = sim.schedule(2.0, fired.append, "y")
    sim.clear()
    assert sim.pending_events == 0
    handle.cancel()  # late cancel after clear stays a no-op
    assert sim.pending_events == 0
    sim.run()
    assert fired == []


def test_step_handles_both_entry_shapes():
    sim = Simulator()
    fired = []
    sim.schedule_fire(1.0, fired.append, "bare")
    sim.schedule(2.0, fired.append, "event")
    assert sim.step() and fired == ["bare"] and sim.now == 1.0
    assert sim.step() and fired == ["bare", "event"] and sim.now == 2.0
    assert not sim.step()
    assert sim.processed_events == 2

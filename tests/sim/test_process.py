"""Unit tests for timers and periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.util.errors import ConfigurationError, SimulationError


class TestTimer:
    def test_fires_after_duration(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append)
        timer.start(2.0, "ding")
        sim.run()
        assert fired == ["ding"]
        assert sim.now == 2.0

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, fired.append)
        timer.start(2.0, "ding")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_resets_countdown(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, timer.start, 2.0)
        sim.run()
        assert fired == [3.0]

    def test_timer_is_reusable(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda tag: fired.append((tag, sim.now)))
        timer.start(1.0, "first")
        sim.run()
        timer.start(1.0, "second")
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        timer.cancel()
        assert not timer.armed

    def test_cancel_unarmed_timer_is_noop(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.cancel()
        assert not timer.armed


class TestPeriodicProcess:
    def test_ticks_every_period(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]
        assert process.ticks == 3

    def test_start_offset_controls_first_tick(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(
            sim, 1.0, lambda: times.append(sim.now), start_offset=0.25
        )
        process.start()
        sim.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_zero_offset_ticks_immediately(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(
            sim, 2.0, lambda: times.append(sim.now), start_offset=0.0
        )
        process.start()
        sim.run(until=3.0)
        assert times == [0.0, 2.0]

    def test_stop_halts_ticking(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not process.running

    def test_start_is_idempotent_while_running(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        process.start()
        sim.run(until=2.0)
        assert times == [1.0, 2.0]

    def test_restart_after_stop(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.run(until=1.0)
        process.stop()
        process.start()
        sim.run(until=2.5)
        assert times == [1.0, 2.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_negative_offset_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 1.0, lambda: None, start_offset=-1.0)

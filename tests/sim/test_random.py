"""Unit tests for named random streams."""

from repro.sim.random import RandomStreams


def test_same_seed_and_name_reproduces_sequence():
    a = RandomStreams(seed=42).get("loss").random(10)
    b = RandomStreams(seed=42).get("loss").random(10)
    assert (a == b).all()


def test_different_names_give_independent_streams():
    streams = RandomStreams(seed=42)
    a = streams.get("loss").random(10)
    b = streams.get("topology").random(10)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("loss").random(10)
    b = RandomStreams(seed=2).get("loss").random(10)
    assert not (a == b).all()


def test_get_returns_same_stateful_generator():
    streams = RandomStreams(seed=7)
    assert streams.get("x") is streams.get("x")


def test_stream_statefulness_shared_by_name():
    streams = RandomStreams(seed=7)
    first = streams.get("x").random()
    second = streams.get("x").random()
    assert first != second  # the stream advanced


def test_fork_derives_independent_family():
    base = RandomStreams(seed=3)
    fork_a = base.fork(0)
    fork_b = base.fork(1)
    assert fork_a.seed != fork_b.seed
    a = fork_a.get("loss").random(5)
    b = fork_b.get("loss").random(5)
    assert not (a == b).all()


def test_fork_is_deterministic():
    a = RandomStreams(seed=3).fork(5).get("w").random(4)
    b = RandomStreams(seed=3).fork(5).get("w").random(4)
    assert (a == b).all()


def test_seed_property():
    assert RandomStreams(seed=11).seed == 11

"""Execute the usage doctests embedded in key public modules."""

import doctest

import pytest

import repro.sim.engine
import repro.sim.random
import repro.system


@pytest.mark.parametrize(
    "module",
    [repro.sim.engine, repro.sim.random, repro.system],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
    assert results.failed == 0

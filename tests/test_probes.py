"""Unit tests of the repro.probes instrumentation bus."""

import re
from pathlib import Path

import pytest

from repro import probes
from repro.probes import (
    FAMILIES,
    ProbeCounters,
    ProbeError,
    ProbeObserver,
    ProbeRegistry,
)
from repro.util.errors import ReproError


class Recorder(ProbeObserver):
    """Auto-discovered handlers that log (name, args) tuples."""

    def __init__(self, name):
        self.name = name
        self.calls = []

    def on_transmit(self, *args):
        self.calls.append((self.name, "transmit", args))

    def on_deliver(self, *args):
        self.calls.append((self.name, "deliver", args))


def fresh_registry():
    namespace = {}
    return ProbeRegistry(namespace), namespace


def test_default_slots_are_none():
    registry, ns = fresh_registry()
    assert set(ns) == {"on_" + family for family in FAMILIES}
    assert all(slot is None for slot in ns.values())
    assert registry.observers() == ()


def test_module_slots_default_none_and_cover_every_family():
    for family in FAMILIES:
        assert getattr(probes, "on_" + family) is None


def test_single_observer_binds_handler_directly():
    registry, ns = fresh_registry()
    observer = Recorder("a")
    registry.attach(observer)
    # One observer: the slot IS the bound method, no fusion wrapper.
    assert ns["on_transmit"] == observer.on_transmit
    assert ns["on_publish"] is None  # unsubscribed family stays a no-op
    ns["on_transmit"](1, 2)
    assert observer.calls == [("a", "transmit", (1, 2))]


def test_detach_restores_none_slots():
    registry, ns = fresh_registry()
    observer = Recorder("a")
    registry.attach(observer)
    registry.detach(observer)
    assert all(slot is None for slot in ns.values())
    assert registry.observers() == ()
    registry.detach(observer)  # unknown observers are ignored


def test_fused_chain_runs_in_attach_order():
    registry, ns = fresh_registry()
    log = []
    first, second = Recorder("first"), Recorder("second")
    first.calls = second.calls = log
    registry.attach(first)
    registry.attach(second)
    ns["on_deliver"]("x")
    assert [name for name, _, _ in log] == ["first", "second"]
    assert registry.observers() == (first, second)


def test_attach_is_idempotent():
    registry, ns = fresh_registry()
    observer = Recorder("a")
    registry.attach(observer)
    registry.attach(observer)
    assert registry.observers() == (observer,)
    ns["on_transmit"]()
    assert len(observer.calls) == 1


def test_explicit_probe_handlers_mapping_wins():
    registry, ns = fresh_registry()
    calls = []

    class Custom:
        def probe_handlers(self):
            return {"ack": lambda *a: calls.append(a)}

        def on_transmit(self, *a):  # not in the mapping: must NOT register
            raise AssertionError("bypassed probe_handlers")

    registry.attach(Custom())
    assert ns["on_transmit"] is None
    ns["on_ack"](0.0, 1, 2, "frame")
    assert calls == [(0.0, 1, 2, "frame")]


def test_unknown_family_rejected():
    registry, _ = fresh_registry()

    class Bogus:
        def probe_handlers(self):
            return {"no_such_family": lambda: None}

    with pytest.raises(ProbeError):
        registry.attach(Bogus())
    assert registry.observers() == ()
    assert isinstance(ProbeError("x"), ReproError)


def test_non_callable_handler_rejected():
    registry, _ = fresh_registry()

    class Bogus:
        def probe_handlers(self):
            return {"ack": "not callable"}

    with pytest.raises(ProbeError):
        registry.attach(Bogus())


def test_veto_family_false_vetoes_but_all_handlers_run():
    registry, ns = fresh_registry()
    seen = []

    def handler_factory(name, result):
        class Vetoer:
            def probe_handlers(self):
                return {
                    "timer_cancelled": lambda token: (
                        seen.append((name, token)),
                        result,
                    )[1]
                }

        return Vetoer()

    registry.attach(handler_factory("allow", True))
    registry.attach(handler_factory("veto", False))
    registry.attach(handler_factory("tail", None))
    assert ns["on_timer_cancelled"](7) is False
    # A veto must not hide the event from later observers.
    assert seen == [("allow", 7), ("veto", 7), ("tail", 7)]

    registry, ns = fresh_registry()
    registry.attach(handler_factory("solo", None))
    # Observation-only handlers (returning None) do not veto.
    assert ns["on_timer_cancelled"](1) is not False


def test_filter_family_threads_value():
    registry, ns = fresh_registry()

    class AddOne:
        def probe_handlers(self):
            return {"table_solved": lambda table: table + 1}

    class Observe:
        def probe_handlers(self):
            return {"table_solved": lambda table: None}  # None = unchanged

    registry.attach(Observe())
    assert ns["on_table_solved"](10) == 10  # single handler still wrapped
    registry.attach(AddOne())
    registry.attach(AddOne())
    assert ns["on_table_solved"](10) == 12


def test_probe_counters_counts_every_family():
    registry, ns = fresh_registry()
    counters = ProbeCounters()
    registry.attach(counters)
    for family in FAMILIES:
        assert ns["on_" + family] is not None
    ns["on_transmit"](0.0, 1, 2, None, True, None, 0.01, 0.0)
    ns["on_transmit"](0.0, 1, 2, None, True, None, 0.01, 0.0)
    ns["on_deliver"](0.0, 3, None)
    ns["on_timer_cancelled"](5)  # counting must not veto
    assert counters.counts == {"transmit": 2, "deliver": 1, "timer_cancelled": 1}
    assert counters.total() == 4
    assert counters.perf_counters() == {
        "probes.deliver": 1.0,
        "probes.timer_cancelled": 1.0,
        "probes.transmit": 2.0,
    }


#: The only modules allowed to touch the legacy ``ACTIVE`` compatibility
#: slots: the bus itself and the two built-in observers it hosts.
_OBSERVER_MODULES = {"probes.py", "sanity.py", "trace.py"}


def test_no_active_hook_checks_outside_registered_observers():
    """Grep-enforced: hook sites go through repro.probes slots only.

    Before the bus, every instrumented module guarded its hook calls with
    ``_sanity.ACTIVE``/``_trace.ACTIVE`` checks — two branches per site,
    and a third once perf counters joined. Any ``<module>.ACTIVE``
    reference outside the observer modules means a site regressed to the
    old pattern (or a new site bypassed the bus).
    """
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    pattern = re.compile(r"\b\w+\.ACTIVE\b")
    offenders = [
        f"{path.relative_to(src)}:{lineno}: {line.strip()}"
        for path in sorted(src.rglob("*.py"))
        if path.name not in _OBSERVER_MODULES
        for lineno, line in enumerate(path.read_text().splitlines(), 1)
        if pattern.search(line)
    ]
    assert not offenders, (
        "legacy ACTIVE hook checks outside repro.probes observers "
        "(instrument via a probes slot instead):\n" + "\n".join(offenders)
    )


def test_module_registry_attach_detach_roundtrip():
    observer = Recorder("module")
    before = probes.observers()
    probes.attach(observer)
    try:
        assert observer in probes.observers()
        assert probes.on_transmit is not None
        probes.on_transmit(0.0, 1, 2, None, True, None, 0.01, 0.0)
        assert observer.calls
    finally:
        probes.detach(observer)
    assert probes.observers() == before
    if not before:
        assert probes.on_transmit is None

"""Unit tests for the SimSanitizer's hooks, checks, and reporting.

These drive :class:`repro.sanity.Sanitizer` directly with stub frames and
tables — no simulation — so each invariant's trigger condition, violation
kind, and report payload is pinned in isolation. Integration-level
behaviour (hooks wired into real runs) lives in
``tests/integration/test_conformance.py`` and
``tests/integration/test_sanitizer_mutations.py``.
"""

import pytest

from repro import sanity
from repro.core.computation import DrTable, NodeState, ViaNeighbor
from repro.sanity import InvariantViolation, Sanitizer


class Frame:
    """Minimal stand-in for PacketFrame, as far as the sanitizer looks."""

    def __init__(self, transfer_id=1, msg_id=10, destinations=frozenset({5}),
                 routing_path=(), topic=0, origin=0):
        self.transfer_id = transfer_id
        self.msg_id = msg_id
        self.destinations = destinations
        self.routing_path = tuple(routing_path)
        self.path_set = frozenset(routing_path)
        self.topic = topic
        self.origin = origin


class Outcome:
    """Minimal stand-in for DeliveryOutcome."""

    def __init__(self, msg_id, subscriber, delivered=False, gave_up=False):
        self.msg_id = msg_id
        self.subscriber = subscriber
        self.delivered = delivered
        self.gave_up = gave_up


class Metrics:
    def __init__(self, *outcomes):
        self._outcomes = list(outcomes)

    def outcomes(self):
        return list(self._outcomes)


def violation(call, *args, **kwargs):
    with pytest.raises(InvariantViolation) as excinfo:
        call(*args, **kwargs)
    return excinfo.value


# ---------------------------------------------------------------------------
# Kernel event order
# ---------------------------------------------------------------------------
def test_event_pop_in_order_is_clean():
    s = Sanitizer()
    s.on_event_pop(1.0, 1.0)
    s.on_event_pop(2.0, 1.0)
    assert s.events_checked == 2
    assert s.violations == 0


def test_event_pop_back_in_time_violates():
    s = Sanitizer()
    error = violation(s.on_event_pop, 0.5, 1.0)
    assert error.kind == sanity.EVENT_ORDER
    assert error.details == {"time": 0.5, "now": 1.0}
    assert s.violations == 1


# ---------------------------------------------------------------------------
# Broker accept: dedup, path sync, loop freedom
# ---------------------------------------------------------------------------
def test_duplicate_post_dedup_accept_violates():
    s = Sanitizer()
    s.on_broker_accept(3, 2, Frame(transfer_id=7, routing_path=(1, 2)))
    error = violation(
        s.on_broker_accept, 3, 2, Frame(transfer_id=7, routing_path=(1, 2))
    )
    assert error.kind == sanity.DUPLICATE_DELIVERY
    assert error.details["transfer_id"] == 7


def test_path_set_desync_violates():
    s = Sanitizer()
    frame = Frame(routing_path=(1, 2))
    frame.path_set = frozenset({1})  # drifted
    assert violation(s.on_broker_accept, 3, 2, frame).kind == sanity.PATH_DESYNC


def test_path_tail_must_match_sender():
    s = Sanitizer()
    frame = Frame(routing_path=(1, 2))
    error = violation(s.on_broker_accept, 3, 9, frame)
    assert error.kind == sanity.PATH_DESYNC
    assert error.details["sender"] == 9


def test_legal_upstream_bounce_is_clean():
    # 1 -> 2 -> 3 got stuck at 3, which bounces the copy back to its
    # upstream 2: path (1, 2, 3), arriving at node 2 from sender 3.
    s = Sanitizer()
    s.on_broker_accept(2, 3, Frame(routing_path=(1, 2, 3)))
    assert s.violations == 0


def test_second_hop_bounce_uses_first_occurrence_upstream():
    # Path (1, 2, 3, 2): node 2 already bounced once and forwarded again;
    # its upstream stays 1 (entry before 2's FIRST appearance).
    s = Sanitizer()
    s.on_broker_accept(1, 2, Frame(routing_path=(1, 2, 3, 2)))
    assert s.violations == 0


def test_revisit_that_is_not_a_bounce_violates():
    # Arriving at node 1 from sender 3 whose upstream is 2 — a loop.
    s = Sanitizer()
    error = violation(s.on_broker_accept, 1, 3, Frame(routing_path=(1, 2, 3)))
    assert error.kind == sanity.PATH_CYCLE
    assert error.details["node"] == 1
    assert error.details["sender"] == 3


def test_fresh_broker_accept_is_clean():
    s = Sanitizer()
    s.on_broker_accept(4, 3, Frame(routing_path=(1, 2, 3)))
    assert s.accepts_checked == 1
    assert s.violations == 0


# ---------------------------------------------------------------------------
# ARQ timer lifecycle
# ---------------------------------------------------------------------------
def test_timer_start_then_cancel_settles_once():
    s = Sanitizer()
    s.on_timer_started(11, deadline=2.0)
    s.on_timer_cancelled(11)
    assert (s.timers_started, s.timers_settled) == (1, 1)


def test_timer_settle_without_start_violates():
    s = Sanitizer()
    assert violation(s.on_timer_fired, 99).kind == sanity.TIMER_UNKNOWN


def test_timer_double_settle_violates():
    s = Sanitizer()
    s.on_timer_started(11, deadline=2.0)
    s.on_timer_cancelled(11)
    error = violation(s.on_timer_fired, 11)
    assert error.kind == sanity.TIMER_DOUBLE_SETTLE
    assert error.details == {"token": 11, "first": "cancelled", "second": "fired"}


def test_due_pending_timer_is_an_orphan_at_finish():
    s = Sanitizer()
    s.on_timer_started(11, deadline=2.0)
    error = violation(s.finish, Metrics(), now=5.0)
    assert error.kind == sanity.TIMER_ORPHAN
    assert error.details["first_token"] == 11


def test_timer_still_in_the_future_is_not_an_orphan():
    s = Sanitizer()
    s.on_timer_started(11, deadline=9.0)
    s.finish(Metrics(), now=5.0)  # run ended before the deadline: fine
    assert s.violations == 0


# ---------------------------------------------------------------------------
# Theorem-1 sending-list order
# ---------------------------------------------------------------------------
def _table(vias):
    states = {0: NodeState(d=1.0, r=0.9, sending_list=tuple(vias))}
    return DrTable(
        publisher=0, subscriber=5, deadline=1.0, states=states,
        budgets={0: 1.0}, rounds=1, converged=True,
    )


def test_ordered_sending_list_is_clean():
    s = Sanitizer()
    s.check_dr_table(_table([
        ViaNeighbor(neighbor=1, d_via=0.1, r_via=0.9),   # key ~0.111
        ViaNeighbor(neighbor=2, d_via=0.2, r_via=0.9),   # key ~0.222
        ViaNeighbor(neighbor=3, d_via=0.2, r_via=0.0),   # key inf, last
    ]))
    assert s.tables_checked == 1
    assert s.violations == 0


def test_missorted_sending_list_violates():
    s = Sanitizer()
    error = violation(s.check_dr_table, _table([
        ViaNeighbor(neighbor=2, d_via=0.2, r_via=0.9),
        ViaNeighbor(neighbor=1, d_via=0.1, r_via=0.9),
    ]))
    assert error.kind == sanity.SENDING_LIST_ORDER
    assert error.details["publisher"] == 0
    assert error.details["subscriber"] == 5


def test_tie_on_ratio_breaks_by_neighbor_id():
    s = Sanitizer()
    error = violation(s.check_dr_table, _table([
        ViaNeighbor(neighbor=2, d_via=0.1, r_via=0.9),
        ViaNeighbor(neighbor=1, d_via=0.1, r_via=0.9),  # same key, lower id
    ]))
    assert error.kind == sanity.SENDING_LIST_ORDER


def test_missort_mutation_corrupts_a_checked_table(monkeypatch):
    monkeypatch.setattr(sanity, "MUTATE_MISSORT_SENDING_LIST", True)
    s = Sanitizer()
    table = _table([
        ViaNeighbor(neighbor=1, d_via=0.1, r_via=0.9),
        ViaNeighbor(neighbor=2, d_via=0.2, r_via=0.9),
    ])
    assert violation(s.checked_table, table).kind == sanity.SENDING_LIST_ORDER


# ---------------------------------------------------------------------------
# Conservation
# ---------------------------------------------------------------------------
def _send(s, frame, survived=True, cause=None):
    s.on_data_transmit(0, 1, frame, survived, cause)


def test_conservation_partitions_every_pair():
    s = Sanitizer()
    carried = Frame(transfer_id=1, msg_id=10, destinations=frozenset({5, 6}))
    _send(s, carried)
    s.on_frame_delivered(carried)
    lost = Frame(transfer_id=2, msg_id=11, destinations=frozenset({7}))
    _send(s, lost, survived=False, cause="random_loss")
    s.finish(
        Metrics(
            Outcome(10, 5, delivered=True),
            Outcome(10, 6),             # copy arrived, never delivered
            Outcome(11, 7),             # only carrying copy was lost
            Outcome(12, 8, gave_up=True),
        ),
        now=1.0,
    )
    assert s.pair_counts["delivered"] == 1
    assert s.pair_counts["stranded_arrived"] == 1
    assert s.pair_counts["stranded_lost"] == 1
    assert s.pair_counts["dropped"] == 1
    assert s.pair_counts["leaked"] == 0
    assert s.losses_by_cause == {"random_loss": 1}


def test_pair_never_carried_is_leaked():
    s = Sanitizer()
    error = violation(s.finish, Metrics(Outcome(10, 5)), now=1.0)
    assert error.kind == sanity.CONSERVATION
    assert error.details["leaked_pairs"] == [(10, 5)]


def test_custody_pairs_are_not_leaked():
    s = Sanitizer()
    s.on_pair_custody(10, 5)
    s.finish(Metrics(Outcome(10, 5)), now=1.0)
    assert s.pair_counts["stranded_custody"] == 1


def test_in_flight_copy_explains_a_stranded_pair():
    s = Sanitizer()
    frame = Frame(transfer_id=1, msg_id=10, destinations=frozenset({5}))
    _send(s, frame)  # transmitted, neither delivered nor lost by run end
    s.finish(Metrics(Outcome(10, 5)), now=1.0)
    assert s.pair_counts["stranded_in_flight"] == 1


def test_delivery_without_transmission_violates():
    s = Sanitizer()
    error = violation(s.on_frame_delivered, Frame(transfer_id=3))
    assert error.kind == sanity.CONSERVATION


# ---------------------------------------------------------------------------
# Reporting, counters, install/uninstall
# ---------------------------------------------------------------------------
def test_report_lists_details_and_frames():
    s = Sanitizer()
    frame = Frame(transfer_id=7, routing_path=(1, 2))
    s.on_broker_accept(3, 2, frame)
    error = violation(s.on_broker_accept, 3, 2, frame)
    report = error.report()
    assert "duplicate_delivery" in report
    assert "transfer=7" in report
    assert "node: 3" in report


def test_perf_counters_cover_all_dimensions():
    s = Sanitizer()
    s.on_event_pop(1.0, 0.5)  # counted even though clean
    s.on_timer_started(1, 2.0)
    s.on_timer_cancelled(1)
    s.finish(Metrics(), now=3.0)
    perf = s.perf_counters()
    assert perf["sanity.events_checked"] == 1.0
    assert perf["sanity.timers_started"] == 1.0
    assert perf["sanity.timers_settled"] == 1.0
    assert perf["sanity.violations"] == 0.0
    assert perf["sanity.pairs_leaked"] == 0.0


def test_install_uninstall_manage_the_active_slot():
    s = Sanitizer()
    sanity.install(s)
    try:
        assert sanity.ACTIVE is s
    finally:
        sanity.uninstall()
    assert sanity.ACTIVE is None

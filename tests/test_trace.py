"""Unit tests for the FrameTracer (repro.trace).

These drive the tracer directly with scripted hook calls — no simulator —
so every query path (journeys, delay breakdowns, retransmission trees,
excerpts, JSONL round-trips) is pinned against hand-computed expectations.
The integration suites cover the hook *sites*; here the subject is the
recorder itself.
"""

import io
import math

import pytest

from repro import trace
from repro.trace import (
    ARRIVE,
    DEFAULT_CAPACITY,
    FrameTracer,
    LINK_DROP,
    PUBLISH,
    TRANSMIT,
    TraceError,
    load_jsonl,
)


class FakeFrame:
    """Just enough PacketFrame surface for the tracer hooks."""

    def __init__(
        self,
        msg_id,
        transfer_id,
        origin=0,
        publish_time=0.0,
        destinations=frozenset({3}),
        topic=7,
        routing_path=(),
        fragments_needed=0,
        fragment_index=-1,
    ):
        self.msg_id = msg_id
        self.transfer_id = transfer_id
        self.origin = origin
        self.publish_time = publish_time
        self.destinations = destinations
        self.topic = topic
        self.routing_path = routing_path
        self.fragments_needed = fragments_needed
        self.fragment_index = fragment_index


def scripted_two_hop_tracer():
    """One message 0 -> 1 -> 2 with a lost first attempt on the second hop.

    Timeline (all hand-picked):

    * t=0.00  publish at node 0 (root transfer 1)
    * t=0.00  transfer 2 (fork of 1) transmitted 0->1, prop 0.01
    * t=0.01  transfer 2 arrives at 1
    * t=0.02  transfer 3 (fork of 2) transmitted 1->2 — LOST
    * t=0.05  transfer 3 retransmitted 1->2, prop 0.01
    * t=0.06  transfer 3 arrives at 2; delivered to the local subscriber
    """
    tracer = FrameTracer()
    root = FakeFrame(1, 1)
    tracer.on_publish(root)
    tracer.on_fork(1, 2)
    hop1 = FakeFrame(1, 2, routing_path=(0,))
    tracer.on_transmit(0.00, 0, 1, hop1, True, None, 0.01, 0.0)
    tracer.on_arrive(0.01, 0, 1, hop1)
    tracer.on_fork(2, 3)
    hop2 = FakeFrame(1, 3, routing_path=(0, 1))
    tracer.on_transmit(0.02, 1, 2, hop2, False, "loss", 0.01, 0.0)
    tracer.on_ack_timeout(0.05, 1, 2, hop2, 1, True)
    tracer.on_transmit(0.05, 1, 2, hop2, True, None, 0.01, 0.0)
    tracer.on_arrive(0.06, 1, 2, hop2)
    tracer.on_deliver(0.06, 2, hop2)
    return tracer


class TestRecording:
    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        tracer = FrameTracer(capacity=4)
        for msg in range(6):
            tracer.on_publish(FakeFrame(msg, msg + 10, publish_time=float(msg)))
        events = tracer.events()
        assert len(events) == 4
        assert tracer.events_recorded == 6
        assert tracer.events_dropped == 2
        assert [e.msg for e in events] == [2, 3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TraceError):
            FrameTracer(capacity=0)

    def test_departure_loss_records_transmit_and_link_drop(self):
        tracer = FrameTracer()
        frame = FakeFrame(1, 2)
        tracer.on_transmit(0.5, 0, 1, frame, False, "link_failed", 0.01, 0.0)
        kinds = [e.kind for e in tracer.events()]
        assert kinds == [TRANSMIT, LINK_DROP]
        drop = tracer.events()[-1]
        assert drop.info == {"cause": "link_failed"}

    def test_bare_objects_without_transfer_id_are_ignored(self):
        tracer = FrameTracer()
        tracer.on_transmit(0.0, 0, 1, object(), True, None, 0.01, 0.0)
        tracer.on_arrive(0.0, 0, 1, object())
        assert tracer.events() == []

    def test_events_for_filters_by_ids(self):
        tracer = scripted_two_hop_tracer()
        assert all(e.msg == 1 for e in tracer.events_for(msg_id=1))
        assert {e.transfer for e in tracer.events_for(transfer_id=3)} == {3}
        assert tracer.events_for(msg_id=99) == []

    def test_parent_lineage(self):
        tracer = scripted_two_hop_tracer()
        assert tracer.parent(3) == 2
        assert tracer.parent(2) == 1
        assert tracer.parent(1) == -1

    def test_perf_counters(self):
        tracer = scripted_two_hop_tracer()
        perf = tracer.perf_counters()
        assert perf["trace.events_recorded"] == tracer.events_recorded
        assert perf["trace.forks"] == 2.0
        assert perf["trace.transmit"] == 3.0
        assert perf["trace.link_drop"] == 1.0
        assert perf["trace.deliver"] == 1.0


class TestJourney:
    def test_chain_and_hops(self):
        tracer = scripted_two_hop_tracer()
        journey = tracer.journey(1, 2)
        assert journey.chain == (0, 1, 2)
        assert journey.complete
        assert journey.origin == 0
        assert journey.total_delay == pytest.approx(0.06)
        first, second = journey.hops
        assert (first.src, first.dst, first.attempts) == (0, 1, 1)
        assert (second.src, second.dst, second.attempts) == (1, 2, 2)
        assert second.first_tx == 0.02
        assert second.send_tx == 0.05  # the surviving attempt
        assert second.arrival == 0.06

    def test_publisher_local_delivery_is_a_trivial_journey(self):
        tracer = FrameTracer()
        tracer.on_publish(FakeFrame(4, 9, origin=5, publish_time=2.5))
        journey = tracer.journey(4, 5)
        assert journey.chain == (5,)
        assert journey.hops == ()
        assert journey.total_delay == 0.0
        assert journey.complete

    def test_unknown_pair_raises(self):
        tracer = scripted_two_hop_tracer()
        with pytest.raises(TraceError):
            tracer.journey(1, 9)
        with pytest.raises(TraceError):
            tracer.journey(42, 2)

    def test_retransmit_after_arrival_keeps_send_tx_at_first_arrival(self):
        # DATA arrived but its ACK was lost: the sender retransmits a copy
        # that already reached its receiver. The arriving attempt is still
        # the first one — the late retransmit must not inflate the
        # retransmission component.
        tracer = FrameTracer()
        tracer.on_publish(FakeFrame(1, 1))
        tracer.on_fork(1, 2)
        frame = FakeFrame(1, 2)
        tracer.on_transmit(0.0, 0, 1, frame, True, None, 0.01, 0.0)
        tracer.on_arrive(0.01, 0, 1, frame)
        tracer.on_deliver(0.01, 1, frame)
        tracer.on_ack_timeout(0.5, 0, 1, frame, 1, True)
        tracer.on_transmit(0.5, 0, 1, frame, True, None, 0.01, 0.0)
        tracer.on_arrive(0.51, 0, 1, frame)
        journey = tracer.journey(1, 1)
        (hop,) = journey.hops
        assert hop.send_tx == 0.0
        assert hop.arrival == 0.01
        assert hop.attempts == 2
        breakdown = tracer.delay_breakdown(1, 1)
        assert breakdown.retransmission == 0.0


class TestDelayBreakdown:
    def test_components_match_hand_computation(self):
        tracer = scripted_two_hop_tracer()
        breakdown = tracer.delay_breakdown(1, 2)
        assert breakdown.total == pytest.approx(0.06)
        # Broker 1 held the frame 0.01s before first transmitting it.
        assert breakdown.timeout_wait == pytest.approx(0.01)
        # The lost attempt at 0.02 was recovered at 0.05.
        assert breakdown.retransmission == pytest.approx(0.03)
        assert breakdown.queueing == 0.0
        assert breakdown.transmission == pytest.approx(0.02)

    def test_components_sum_is_exact(self):
        tracer = scripted_two_hop_tracer()
        breakdown = tracer.delay_breakdown(1, 2)
        assert breakdown.components_sum() == breakdown.total
        assert math.fsum(
            (
                breakdown.transmission,
                breakdown.queueing,
                breakdown.timeout_wait,
                breakdown.retransmission,
            )
        ) == breakdown.total

    def test_fifo_queue_wait_is_classified_as_queueing(self):
        tracer = FrameTracer()
        tracer.on_publish(FakeFrame(1, 1))
        tracer.on_fork(1, 2)
        frame = FakeFrame(1, 2)
        # The link is busy: 0.3s queue wait recorded at transmit time.
        tracer.on_transmit(0.0, 0, 1, frame, True, None, 0.01, 0.3)
        tracer.on_enqueue(0.0, 0, 1, frame, 0.3)
        tracer.on_arrive(0.36, 0, 1, frame)  # 0.3 wait + 0.05 serialise + 0.01 prop
        tracer.on_deliver(0.36, 1, frame)
        breakdown = tracer.delay_breakdown(1, 1)
        assert breakdown.queueing == pytest.approx(0.3)
        assert breakdown.transmission == pytest.approx(0.06)
        assert breakdown.components_sum() == breakdown.total

    def test_edf_queueing_derived_from_arrival(self):
        tracer = FrameTracer()
        tracer.on_publish(FakeFrame(1, 1))
        tracer.on_fork(1, 2)
        frame = FakeFrame(1, 2)
        # EDF: wait unknown at transmit time (queue=None); arrival implies it.
        tracer.on_transmit(0.0, 0, 1, frame, True, None, 0.01, None)
        tracer.on_enqueue(0.0, 0, 1, frame, None, qlen=4)
        tracer.on_arrive(0.21, 0, 1, frame)
        tracer.on_deliver(0.21, 1, frame)
        breakdown = tracer.delay_breakdown(1, 1)
        assert breakdown.queueing == pytest.approx(0.20)
        assert breakdown.components_sum() == breakdown.total


class TestRetransmissionTree:
    def test_tree_structure_and_fates(self):
        tracer = scripted_two_hop_tracer()
        (root,) = tracer.retransmission_tree(1)
        assert root["transfer"] == 2
        assert (root["src"], root["dst"]) == (0, 1)
        assert root["fate"] == "arrived"
        (child,) = root["children"]
        assert child["transfer"] == 3
        assert child["attempts"] == 2
        assert child["fate"] == "arrived"

    def test_lost_copy_fate(self):
        tracer = FrameTracer()
        tracer.on_publish(FakeFrame(1, 1))
        tracer.on_fork(1, 2)
        frame = FakeFrame(1, 2)
        tracer.on_transmit(0.0, 0, 1, frame, False, "loss", 0.01, 0.0)
        (root,) = tracer.retransmission_tree(1)
        assert root["fate"] == "lost"

    def test_format_renders_every_copy(self):
        tracer = scripted_two_hop_tracer()
        text = tracer.format_retransmission_tree(1)
        assert "msg 1" in text
        assert "#2 0->1" in text
        assert "#3 1->2" in text
        assert "attempts=2" in text


class TestExcerpt:
    def test_filters_to_the_given_frame(self):
        tracer = scripted_two_hop_tracer()
        tracer.on_publish(FakeFrame(2, 50))  # unrelated message
        lines = tracer.excerpt(frames=(FakeFrame(1, 3),))
        assert lines
        assert all("msg=1" in line or "transfer=3" in line for line in lines)
        assert not any("msg=2" in line for line in lines)

    def test_falls_back_to_stream_tail(self):
        tracer = scripted_two_hop_tracer()
        lines = tracer.excerpt(limit=3)
        assert len(lines) == 3
        assert "deliver" in lines[-1]

    def test_limit_caps_the_excerpt(self):
        tracer = scripted_two_hop_tracer()
        assert len(tracer.excerpt(frames=(FakeFrame(1, 3),), limit=2)) == 2


class TestJsonlRoundTrip:
    def test_export_then_load_preserves_queries(self):
        tracer = scripted_two_hop_tracer()
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        loaded = load_jsonl(io.StringIO(buffer.getvalue()))
        assert loaded.events_recorded == tracer.events_recorded
        assert [e.as_dict() for e in loaded.events()] == [
            e.as_dict() for e in tracer.events()
        ]
        original = tracer.journey(1, 2)
        recovered = loaded.journey(1, 2)
        assert recovered.chain == original.chain
        assert recovered.delivery_time == original.delivery_time
        assert (
            loaded.delay_breakdown(1, 2).as_dict()
            == tracer.delay_breakdown(1, 2).as_dict()
        )

    def test_export_to_path(self, tmp_path):
        tracer = scripted_two_hop_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        loaded = load_jsonl(str(path))
        assert loaded.journey(1, 2).chain == (0, 1, 2)

    def test_meta_line_first_and_versioned(self):
        buffer = io.StringIO()
        scripted_two_hop_tracer().export_jsonl(buffer)
        import json

        first = json.loads(buffer.getvalue().splitlines()[0])
        assert first["kind"] == "meta"
        assert first["version"] == trace.JSONL_VERSION

    def test_missing_meta_line_rejected(self):
        with pytest.raises(TraceError):
            load_jsonl(io.StringIO('{"seq": 0}\n'))

    def test_unknown_version_rejected(self):
        with pytest.raises(TraceError):
            load_jsonl(io.StringIO('{"kind": "meta", "version": 99}\n'))


class TestInstall:
    def test_install_and_uninstall(self):
        tracer = FrameTracer()
        trace.install(tracer)
        try:
            assert trace.ACTIVE is tracer
        finally:
            trace.uninstall()
        assert trace.ACTIVE is None

    def test_default_capacity_is_large(self):
        assert FrameTracer().capacity == DEFAULT_CAPACITY


def test_publish_event_carries_topic_and_destinations():
    tracer = FrameTracer()
    tracer.on_publish(
        FakeFrame(1, 1, destinations=frozenset({2, 5}), topic=3, publish_time=1.5)
    )
    (event,) = tracer.events()
    assert event.kind == PUBLISH
    assert event.t == 1.5
    assert event.info == {"topic": 3, "dests": [2, 5]}


def test_arrive_event_names_receiver_and_sender():
    tracer = FrameTracer()
    tracer.on_arrive(0.25, 4, 7, FakeFrame(1, 2))
    (event,) = tracer.events()
    assert event.kind == ARRIVE
    assert event.node == 7
    assert event.peer == 4


class TestExactComponents:
    """The breakdown remainder solve lands on ``total`` exactly."""

    def _check(self, total, queueing, timeout_wait, retransmission):
        from repro.trace import _exact_components

        t, q, w, r = _exact_components(total, queueing, timeout_wait, retransmission)
        assert math.fsum((t, q, w, r)) == total
        return t, q, w, r

    def test_plain_remainder(self):
        t, q, w, r = self._check(1.0, 0.25, 0.125, 0.0625)
        assert t == 1.0 - 0.25 - 0.125 - 0.0625
        assert (q, w, r) == (0.25, 0.125, 0.0625)

    def test_all_measured_zero(self):
        t, q, w, r = self._check(0.9859609130136403, 0.0, 0.0, 0.0)
        assert t == 0.9859609130136403

    def test_round_half_even_tie_is_broken(self):
        # Regression: these values (from a fuzzed world) put the exact sum
        # precisely on a round-half-to-even tie — stepping the remainder by
        # one ulp jumps the rounded fsum over ``total`` without hitting it,
        # so the solve must nudge the measured component instead.
        total = 0.9859609130136403
        queueing = 0.4807155120975188
        t, q, w, r = self._check(total, queueing, 0.0, 0.0)
        assert abs(q - queueing) <= math.ulp(queueing)
        assert (w, r) == (0.0, 0.0)

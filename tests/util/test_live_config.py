"""Validation hardening of the live runtime's configuration surface."""

from __future__ import annotations

import pytest

from repro.live.config import LiveConfig
from repro.util.errors import ConfigurationError


class TestTimeouts:
    def test_defaults_are_valid(self):
        config = LiveConfig()
        assert config.host == "127.0.0.1"
        assert config.impose_link_delays

    @pytest.mark.parametrize("value", [0.0, -1.0, -0.001])
    def test_negative_connect_timeout_rejected(self, value):
        with pytest.raises(ConfigurationError, match="connect_timeout"):
            LiveConfig(connect_timeout=value)

    @pytest.mark.parametrize("value", [0.0, -5.0])
    def test_negative_settle_timeout_rejected(self, value):
        with pytest.raises(ConfigurationError, match="settle_timeout"):
            LiveConfig(settle_timeout=value)

    def test_negative_settle_poll_rejected(self):
        with pytest.raises(ConfigurationError, match="settle_poll"):
            LiveConfig(settle_poll=-0.01)


class TestFrameLimit:
    @pytest.mark.parametrize("value", [0, -1, -1024])
    def test_zero_or_negative_frame_limit_rejected(self, value):
        with pytest.raises(ConfigurationError, match="max_frame_bytes"):
            LiveConfig(max_frame_bytes=value)

    def test_non_int_frame_limit_rejected(self):
        with pytest.raises(ConfigurationError, match="max_frame_bytes"):
            LiveConfig(max_frame_bytes=1024.5)


class TestHost:
    def test_empty_host_rejected(self):
        with pytest.raises(ConfigurationError, match="host"):
            LiveConfig(host="")

    def test_non_string_host_rejected(self):
        with pytest.raises(ConfigurationError, match="host"):
            LiveConfig(host=127)


class TestPeers:
    def test_distinct_peer_addresses_accepted(self):
        config = LiveConfig(
            peers={0: ("127.0.0.1", 9001), 1: ("127.0.0.1", 9002)}
        )
        assert config.address_of(0) == ("127.0.0.1", 9001)
        assert config.address_of(2) is None

    def test_duplicate_peer_addresses_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate peer address"):
            LiveConfig(peers={0: ("127.0.0.1", 9001), 1: ("127.0.0.1", 9001)})

    @pytest.mark.parametrize("port", [0, -1, 65536])
    def test_out_of_range_port_rejected(self, port):
        with pytest.raises(ConfigurationError, match="port"):
            LiveConfig(peers={0: ("127.0.0.1", port)})

    def test_empty_peer_host_rejected(self):
        with pytest.raises(ConfigurationError, match="host"):
            LiveConfig(peers={0: ("", 9001)})

    def test_non_tuple_address_rejected(self):
        with pytest.raises(ConfigurationError, match="pair"):
            LiveConfig(peers={0: "127.0.0.1:9001"})

    def test_non_int_node_rejected(self):
        with pytest.raises(ConfigurationError, match="peers key"):
            LiveConfig(peers={"0": ("127.0.0.1", 9001)})

"""Unit tests for validation helpers and the error hierarchy."""

import pytest

from repro.util.errors import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.util.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ConfigurationError, match="broken"):
        require(False, "broken")


def test_require_positive():
    assert require_positive(0.5, "x") == 0.5
    with pytest.raises(ConfigurationError):
        require_positive(0.0, "x")
    with pytest.raises(ConfigurationError):
        require_positive(-1.0, "x")


def test_require_non_negative():
    assert require_non_negative(0.0, "x") == 0.0
    with pytest.raises(ConfigurationError):
        require_non_negative(-0.1, "x")


def test_require_probability():
    assert require_probability(0.0, "p") == 0.0
    assert require_probability(1.0, "p") == 1.0
    with pytest.raises(ConfigurationError):
        require_probability(1.01, "p")
    with pytest.raises(ConfigurationError):
        require_probability(-0.01, "p")


def test_require_in_range():
    assert require_in_range(5, 1, 10, "x") == 5
    with pytest.raises(ConfigurationError):
        require_in_range(0, 1, 10, "x")


def test_require_type():
    assert require_type("s", str, "x") == "s"
    with pytest.raises(ConfigurationError):
        require_type("s", int, "x")


def test_error_hierarchy():
    for error in (ConfigurationError, TopologyError, SimulationError, RoutingError):
        assert issubclass(error, ReproError)
    assert issubclass(ReproError, Exception)
